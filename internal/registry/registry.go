// Package registry assembles the complete ebXML registry server of thesis
// Figure 2.1: persistence (store), the LifeCycleManager and QueryManager
// interfaces, XACML authorization, the audit trail, the event bus, user
// authentication, the load-balancing core, and the NodeStatus collector —
// exposed both as direct Go method calls (freebXML's localCall mode) and
// over HTTP via SOAP and HTTP-GET bindings (see httpserver.go).
package registry

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/audit"
	"repro/internal/auth"
	"repro/internal/breaker"
	"repro/internal/cataloger"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/flight"
	"repro/internal/lcm"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/obs"
	"repro/internal/qm"
	"repro/internal/repl"
	"repro/internal/respcache"
	"repro/internal/rim"
	"repro/internal/router"
	"repro/internal/simclock"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/taxonomy"
	"repro/internal/wal"
	"repro/internal/xacml"
)

// AdminAlias is the built-in registry operator account (the thesis's
// registryOperator identity, §3.4.3).
const AdminAlias = "registryOperator"

// Config tunes a registry instance.
type Config struct {
	// Clock drives timestamps, sessions, constraints and collection;
	// nil means the real clock.
	Clock simclock.Clock
	// Policy is the balancer arrangement policy; the thesis's scheme is
	// PolicyFilter. PolicyStock disables load balancing (the baseline).
	Policy core.Policy
	// TimeMode selects out-of-window behaviour (see core).
	TimeMode core.TimeWindowMode
	// Freshness is the NodeState staleness cutoff; 0 disables it.
	Freshness time.Duration
	// FallbackAll returns load-ordered URIs when nothing is eligible.
	FallbackAll bool
	// Degraded selects what discovery serves when filtering and fallback
	// leave nothing at all (every host quarantined or stale).
	Degraded core.DegradedMode
	// CollectionPeriod overrides the 25 s NodeStatus poll period.
	CollectionPeriod time.Duration
	// Invoker performs NodeStatus invocations; nil means HTTP.
	Invoker nodestatus.Invoker
	// InvokeTimeout is the collector's per-invocation deadline; 0 means
	// none.
	InvokeTimeout time.Duration
	// InvokeRetries re-attempts a failed invocation up to this many times
	// per sweep, waiting RetryBackoff (jittered) between attempts.
	InvokeRetries int
	RetryBackoff  time.Duration
	// Breaker enables per-host circuit breakers on the collector; nil
	// disables them.
	Breaker *breaker.Config
	// Versioning enables automatic version bumps on update.
	Versioning bool
	// AccessPolicy overrides the default XACML policy.
	AccessPolicy *xacml.Policy
	// ConstraintCacheSize bounds the parsed-constraint cache: 0 means
	// constraint.DefaultCacheSize, negative disables caching entirely
	// (every discovery reparses the description).
	ConstraintCacheSize int
	// SnapshotMaxAge is the staleness guard on the NodeState RCU
	// snapshot: discovery serves a published snapshot no older than this
	// without locking even while the collector writes rows. 0 keeps reads
	// fully coherent. A sensible production value is the collection
	// period.
	SnapshotMaxAge time.Duration
	// Logger receives structured logs from the registry's components
	// (collector, LCM, HTTP surface). Nil discards everything.
	Logger *slog.Logger
	// TraceSample samples every Nth HTTP discovery request into the trace
	// ring (see /registry/traces). 0 disables tracing entirely: the fast
	// path then sees only nil-trace no-ops and allocates nothing.
	TraceSample int
	// TraceRing bounds how many finished traces are retained; 0 means
	// obs.DefaultRingSize.
	TraceRing int
	// Pprof mounts net/http/pprof under /debug/pprof/ on the HTTP
	// handler. Off by default; profiling endpoints are opt-in.
	Pprof bool
	// DataDir enables crash-safe durability: every acknowledged LCM
	// mutation is write-ahead-logged there and boot recovers the newest
	// checkpoint plus the WAL tail. Empty keeps the registry in-memory
	// (the pre-durability behaviour).
	DataDir string
	// Fsync is the WAL flush policy (always/interval/never); the zero
	// value is wal.FsyncAlways.
	Fsync wal.FsyncPolicy
	// FsyncInterval bounds loss under wal.FsyncInterval; 0 means
	// wal.DefaultFsyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes caps a WAL segment; 0 means wal.DefaultSegmentBytes.
	SegmentBytes int64
	// CheckpointBytes / CheckpointRecords trigger automatic checkpoints;
	// 0 means the wal defaults, negative disables that trigger.
	CheckpointBytes   int64
	CheckpointRecords int
	// Admission enables the overload-resilient serving edge: per-class
	// in-flight/queue bounds, adaptive shedding, deadline budgets, and
	// the brownout ladder (see internal/admit). The zero-value
	// &admit.Config{} selects the production defaults; nil serves every
	// request unconditionally (the pre-admission behaviour).
	Admission *admit.Config
	// RespCacheSize bounds the preserialized discovery response cache:
	// 0 means respcache.DefaultSize, negative disables the cache (every
	// discovery re-marshals its response).
	RespCacheSize int
	// EdgeMaxPathLength / EdgeMaxDepth are the frozen router's request
	// limits: paths longer than EdgeMaxPathLength bytes answer 414,
	// paths nested deeper than EdgeMaxDepth segments answer 400. 0 means
	// the router defaults.
	EdgeMaxPathLength int
	EdgeMaxDepth      int
	// FlightRing bounds the always-on flight recorder's record ring
	// (rounded up to a power of two): 0 means flight.DefaultRingSize,
	// negative disables the recorder entirely.
	FlightRing int
	// SLO overrides the burn-rate objectives; nil means
	// obs.DefaultSLOConfig (99.9% availability, 99% of requests under
	// 250ms, 5m and 1h windows).
	SLO *obs.SLOConfig
	// ReplLeader serves the WAL-shipping endpoints (/registry/repl/wal
	// and /registry/repl/checkpoint) so followers can tail this
	// registry. Requires DataDir: the stream is fed by the durability
	// manager's segmented log.
	ReplLeader bool
	// ReplFollowURL marks this registry a read-only replication follower
	// of the leader at the given base URL: life-cycle and auth writes
	// answer 307 + a typed NotRegistryLeader fault pointing there, while
	// discovery and query reads keep serving locally. Mutually exclusive
	// with ReplLeader.
	ReplFollowURL string
}

// Registry is an assembled registry server.
type Registry struct {
	Store     *store.Store
	Clock     simclock.Clock
	Balancer  *core.Balancer
	LCM       *lcm.Manager
	QM        *qm.Manager
	Trail     *audit.Trail
	Bus       *events.Bus
	Registrar *auth.Registrar
	Collector *nodestate.Collector
	// Telemetry holds the collector's fault-tolerance counters and breaker
	// gauges (always allocated).
	Telemetry *nodestate.Telemetry
	// Breakers is the collector's breaker set (nil when Config.Breaker was
	// nil).
	Breakers *breaker.Set
	// ConstraintCache is the parsed-constraint cache on the discovery
	// path (nil when Config.ConstraintCacheSize was negative).
	ConstraintCache *constraint.Cache
	// Tracer samples HTTP discovery requests into a bounded ring served
	// by /registry/traces (always allocated; sampling off by default).
	Tracer *obs.Tracer
	// Log is the registry's structured logger (never nil; a nop logger
	// when Config.Logger was nil).
	Log *slog.Logger
	// Durable is the WAL-backed durability manager (nil when
	// Config.DataDir was empty: the registry is then purely in-memory).
	Durable *wal.Durable
	// Admission is the serving edge's admission controller (nil when
	// Config.Admission was nil: every request is then served
	// unconditionally).
	Admission *admit.Controller
	// RespCache is the preserialized discovery response cache (nil when
	// Config.RespCacheSize was negative).
	RespCache *respcache.Cache
	// Flight is the always-on wide-event recorder behind /registry/flight
	// (nil when Config.FlightRing was negative).
	Flight *flight.Ring
	// Balance tracks per-host assignment counts and their per-sweep
	// fairness/skew rollups (always allocated).
	Balance *obs.Balance
	// SLOEngine derives multi-window availability and latency burn rates
	// from the discovery counters (always allocated).
	SLOEngine *obs.SLO
	// ReplLeader serves the replication stream (nil unless
	// Config.ReplLeader was set).
	ReplLeader *repl.Leader

	// follower is the attached replication follower on a follower node
	// (set after construction via AttachFollower; scrapes read it).
	follower   atomic.Pointer[repl.Follower]
	replFollow string // leader base URL when this node is a follower

	discovery discoveryMetrics
	expo      *obs.Exposition
	pprof     bool

	edgeCfg     router.Config
	handlerOnce sync.Once
	handler     http.Handler                  // built once by Handler()
	edge        atomic.Pointer[router.Router] // the frozen router, for scrape-time reads

	adminID string
	catOnce sync.Once
	cat     *cataloger.Registry

	outboxMu sync.Mutex
	outboxes []*events.EmailDeliverer // guarded by outboxMu
}

// New builds a registry from cfg.
func New(cfg Config) (*Registry, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = simclock.Real{}
	}
	logger := obs.OrNop(cfg.Logger)
	s := store.New()
	var cache *constraint.Cache
	if cfg.ConstraintCacheSize >= 0 {
		cache = constraint.NewCache(cfg.ConstraintCacheSize)
	}
	bal := &core.Balancer{
		Table:          s.NodeState(),
		Policy:         cfg.Policy,
		TimeMode:       cfg.TimeMode,
		Freshness:      cfg.Freshness,
		FallbackAll:    cfg.FallbackAll,
		Degraded:       cfg.Degraded,
		Cache:          cache,
		SnapshotMaxAge: cfg.SnapshotMaxAge,
	}
	trail := audit.New(s, clk)
	bus := events.NewBus()
	policy := cfg.AccessPolicy
	if policy == nil {
		policy = xacml.DefaultPolicy()
	}
	lifecycle := lcm.New(s, policy, trail, bus)
	lifecycle.Versioning = cfg.Versioning
	lifecycle.Log = logger.With("component", "lcm")
	var respCache *respcache.Cache
	if cfg.RespCacheSize >= 0 {
		respCache = respcache.New(cfg.RespCacheSize)
	}
	// Any successful write drops the touched ids from the constraint
	// cache so a description edit or removal is reparsed on next lookup,
	// and advances the response cache's write epoch so no preserialized
	// answer can outlive the write. Both caches are nil-safe.
	lifecycle.OnWrite = func(ids ...string) {
		cache.InvalidateIDs(ids...)
		respCache.BumpEpoch()
	}
	query := qm.New(s, bal, clk)
	registrar := auth.NewRegistrar(clk)

	// Durability comes up before any bootstrap write so recovery (newest
	// checkpoint + WAL tail) restores into an empty store, and before the
	// first client request so every acknowledged mutation is logged.
	var durable *wal.Durable
	if cfg.DataDir != "" {
		var err error
		durable, err = wal.OpenDurable(cfg.DataDir, s, wal.DurableOptions{
			Log: wal.Options{
				SegmentBytes:  cfg.SegmentBytes,
				Fsync:         cfg.Fsync,
				FsyncInterval: cfg.FsyncInterval,
				Clock:         clk,
				Logger:        logger.With("component", "wal"),
			},
			CheckpointBytes:   cfg.CheckpointBytes,
			CheckpointRecords: cfg.CheckpointRecords,
		})
		if err != nil {
			return nil, err
		}
		lifecycle.Durability = durable
	}

	invoker := cfg.Invoker
	if invoker == nil {
		invoker = nodestatus.HTTPInvoker{}
	}
	telemetry := nodestate.NewTelemetry()
	var breakers *breaker.Set
	opts := []nodestate.Option{
		nodestate.WithTelemetry(telemetry),
		nodestate.WithLogger(logger.With("component", "collector")),
	}
	if cfg.CollectionPeriod > 0 {
		opts = append(opts, nodestate.WithPeriod(cfg.CollectionPeriod))
	}
	if cfg.InvokeTimeout > 0 {
		opts = append(opts, nodestate.WithTimeout(cfg.InvokeTimeout))
	}
	if cfg.InvokeRetries > 0 {
		opts = append(opts, nodestate.WithRetries(cfg.InvokeRetries, cfg.RetryBackoff))
	}
	if cfg.Breaker != nil {
		breakers = breaker.NewSet(*cfg.Breaker)
		opts = append(opts, nodestate.WithBreakers(breakers))
	}

	// Balance and SLO rollups ride the collector's sweep cadence: the
	// same tick that republishes the NodeState snapshot cuts a fairness
	// interval and an SLO sample, on the wall clock in production and the
	// manual clock in tests — one deterministic heartbeat for both.
	balance := obs.NewBalance()
	sloCfg := obs.DefaultSLOConfig()
	if cfg.SLO != nil {
		sloCfg = *cfg.SLO
	}
	sloEngine := obs.NewSLO(sloCfg)
	var afterSweep func()
	opts = append(opts, nodestate.WithAfterSweep(func() {
		if afterSweep != nil {
			afterSweep()
		}
	}))
	collector := nodestate.New(s.NodeState(), invoker, clk, query.CollectionTargets, opts...)

	tracer := obs.NewTracer(clk, cfg.TraceRing)
	tracer.SetSample(cfg.TraceSample)

	// Admission control and the brownout ladder: each ladder transition
	// flips the corresponding degradation overrides — trace sampling off
	// at TierNoTrace, stale snapshots at TierStale, forced static
	// fallback at TierStatic — and restores them on the way back down.
	var ctrl *admit.Controller
	if cfg.Admission != nil {
		ctrl = admit.NewController(*cfg.Admission, clk, logger.With("component", "admit"))
		brown := &core.BrownoutState{}
		bal.Brownout = brown
		sample := cfg.TraceSample
		staleness := ctrl.Config().BrownoutStaleness
		ctrl.OnTierChange(func(t admit.Tier) {
			if t >= admit.TierNoTrace {
				tracer.SetSample(0)
			} else {
				tracer.SetSample(sample)
			}
			if t >= admit.TierStale {
				brown.SetExtraStaleness(staleness)
			} else {
				brown.SetExtraStaleness(0)
			}
			brown.SetForceStatic(t >= admit.TierStatic)
			// The tier is part of every response-cache key, but a
			// transition also flips degradation overrides that feed the
			// decision itself — flush outright rather than reason about
			// which tiers share answers.
			respCache.BumpEpoch()
		})
	}

	r := &Registry{
		Store:     s,
		Clock:     clk,
		Balancer:  bal,
		LCM:       lifecycle,
		QM:        query,
		Trail:     trail,
		Bus:       bus,
		Registrar: registrar,
		Collector: collector,
		Telemetry: telemetry,
		Breakers:  breakers,

		ConstraintCache: cache,
		Tracer:          tracer,
		Log:             logger.With("component", "registry"),
		Durable:         durable,
		Admission:       ctrl,
		RespCache:       respCache,
		Balance:         balance,
		SLOEngine:       sloEngine,
		pprof:           cfg.Pprof,
		edgeCfg: router.Config{
			MaxPathLength: cfg.EdgeMaxPathLength,
			MaxDepth:      cfg.EdgeMaxDepth,
		},
	}
	if cfg.FlightRing >= 0 {
		r.Flight = flight.NewRing(cfg.FlightRing)
	}
	if cfg.ReplLeader {
		if durable == nil {
			return nil, fmt.Errorf("registry: ReplLeader requires DataDir")
		}
		if cfg.ReplFollowURL != "" {
			return nil, fmt.Errorf("registry: ReplLeader and ReplFollowURL are mutually exclusive")
		}
		r.ReplLeader = repl.NewLeader(durable, clk, logger.With("component", "repl"))
	}
	r.replFollow = strings.TrimRight(cfg.ReplFollowURL, "/")
	r.discovery.latency = obs.NewHistogramMetric(obs.DiscoveryLatencyBuckets()...)
	r.discovery.balance = balance
	afterSweep = r.rollup
	r.expo = r.buildExposition()

	// Seed the canonical classification schemes (Table 1.2 + the
	// registry's own ObjectType/AssociationType schemes) — unless recovery
	// already restored them: Seed refuses to overwrite existing schemes.
	if len(s.ByType(rim.TypeClassificationScheme)) == 0 {
		if _, err := taxonomy.Seed(s); err != nil {
			return nil, err
		}
	}

	// Bootstrap the registry operator account. Registrar state (keystore,
	// sessions) is in-memory, so the operator re-registers on every boot
	// with a fresh id; operator User rows recovered from previous boots
	// are superseded here.
	_, adminUser, err := registrar.Register(AdminAlias, auth.DefaultKeystorePassword,
		rim.PersonName{FirstName: "Registry", LastName: "Operator"})
	if err != nil {
		return nil, err
	}
	for _, old := range s.FindByName(rim.TypeUser, AdminAlias) {
		if err := s.Delete(old.Base().ID); err != nil {
			return nil, err
		}
	}
	if err := s.Put(adminUser); err != nil {
		return nil, err
	}
	r.adminID = adminUser.ID

	// Cover the bootstrap writes (taxonomy, operator account) with a
	// checkpoint so a crash before the first client mutation still boots
	// into a well-formed registry.
	if durable != nil {
		if err := durable.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// AdminContext returns the operator's LCM context.
func (r *Registry) AdminContext() lcm.Context {
	return lcm.Context{UserID: r.adminID, Roles: []string{xacml.RoleAdministrator}}
}

// ContextFor builds the LCM context for an authenticated user id.
func (r *Registry) ContextFor(userID string) lcm.Context {
	roles := []string{xacml.RoleRegisteredUser}
	if userID == r.adminID {
		roles = append(roles, xacml.RoleAdministrator)
	}
	return lcm.Context{UserID: userID, Roles: roles}
}

// SessionContext resolves a session token to an LCM context; an empty or
// invalid token yields the guest context and an error callers may ignore
// for read-only paths.
func (r *Registry) SessionContext(token string) (lcm.Context, error) {
	if token == "" {
		return lcm.Guest, nil
	}
	userID, err := r.Registrar.Validate(token)
	if err != nil {
		return lcm.Guest, err
	}
	return r.ContextFor(userID), nil
}

// RunCollector runs the NodeStatus collection loop until ctx is done —
// the TimeHits timer the thesis starts inside the registry server.
func (r *Registry) RunCollector(ctx context.Context) {
	r.Collector.Run(ctx)
}

// AttachFollower wires a replication follower into the registry's
// observability surface (metrics, health, bundle) and its post-apply
// cache invalidation. Call it once, before serving traffic.
func (r *Registry) AttachFollower(f *repl.Follower) {
	f.OnApply = r.LCM.OnWrite
	r.follower.Store(f)
}

// Follower returns the attached replication follower, or nil.
func (r *Registry) Follower() *repl.Follower { return r.follower.Load() }

// IsFollower reports whether this registry redirects writes to a leader.
func (r *Registry) IsFollower() bool { return r.replFollow != "" }

// LeaderURL returns the leader base URL a follower redirects writes to
// (empty on a leader or standalone registry).
func (r *Registry) LeaderURL() string { return r.replFollow }

// notLeader builds the typed redirect a follower answers writes with:
// 307 + Location at the leader's matching endpoint, plus a
// NotRegistryLeader SOAP fault body for clients that do not follow
// redirects.
func (r *Registry) notLeader(endpoint string) *soap.Redirect {
	return &soap.Redirect{
		Location: r.replFollow + endpoint,
		Fault: &soap.Fault{
			Code:   "Server.NotRegistryLeader",
			String: "this registry is a read-only replication follower; retry the write at the leader",
			Detail: r.replFollow,
		},
	}
}
