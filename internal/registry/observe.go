package registry

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
)

// discoveryMetrics are the counters the HTTP discovery handlers maintain
// on top of what the balancer and collector already track: request
// totals, per-verdict binding classifications, and a latency histogram.
// They are observed after the response is computed, off the benched
// QueryManager path.
type discoveryMetrics struct {
	total    metrics.Counter
	errors   metrics.Counter
	fallback metrics.Counter
	degraded metrics.Counter

	eligible    metrics.Counter
	unknown     metrics.Counter
	ineligible  metrics.Counter
	quarantined metrics.Counter

	latency *obs.Histogram
	balance *obs.Balance
}

// observe folds one discovery decision into the counters. host is the
// host the client was directed to (empty when nothing was served), age
// how stale the NodeState snapshot behind the decision was, and seconds
// the request's wall (or sim) duration. Runs on the cache-hit path, so
// it must not allocate.
//
//repolint:hotpath runs on every discovery response including cache hits
func (d *discoveryMetrics) observe(dec core.Decision, host string, age time.Duration, seconds float64) {
	d.total.Inc()
	if dec.FellBack {
		d.fallback.Inc()
	}
	if dec.Degraded {
		d.degraded.Inc()
	}
	d.eligible.Add(int64(dec.Eligible()))
	d.unknown.Add(int64(dec.Unknown()))
	d.ineligible.Add(int64(dec.Ineligible()))
	d.quarantined.Add(int64(dec.Quarantined()))
	d.latency.Observe(seconds)
	d.balance.NoteAssignment(host)
	d.balance.NoteStaleness(age.Seconds())
}

// rollup runs after every collector sweep (see nodestate.WithAfterSweep):
// it folds the interval's assignments into the fairness/skew gauges,
// weighting each host by its collected memory capacity, and cuts one SLO
// burn-rate sample from the cumulative discovery counters.
func (r *Registry) rollup() {
	rows := r.Store.NodeState().Rows()
	weights := make(map[string]float64, len(rows))
	for i := range rows {
		w := float64(rows[i].MemoryB)
		if w <= 0 {
			w = 1
		}
		weights[rows[i].Host] = w
	}
	r.Balance.Rollup(weights)
	d := &r.discovery
	cnt := d.latency.Count()
	slow := cnt - d.latency.CountAtOrBelow(r.SLOEngine.Config().LatencyObjectiveSeconds)
	r.SLOEngine.Record(r.Clock.Now(), d.total.Value(), d.errors.Value(), cnt, slow)
}

// buildExposition registers every exported metric family against the live
// component state. Closures read at scrape time, so the instrumented
// components pay nothing between scrapes; nil components (no constraint
// cache, no breakers) simply read as zero.
func (r *Registry) buildExposition() *obs.Exposition {
	e := obs.NewExposition()

	e.Gauge("registry_objects",
		"Registry objects currently stored.",
		func() float64 { return float64(r.Store.Len()) })

	// Constraint cache (PR 3 fast path).
	cache := r.ConstraintCache
	e.Counter("registry_constraint_cache_hits_total",
		"Discovery constraint lookups served from the parsed-constraint cache.",
		func() int64 {
			if cache == nil {
				return 0
			}
			return cache.Hits.Value()
		})
	e.Counter("registry_constraint_cache_misses_total",
		"Discovery constraint lookups that parsed the description afresh.",
		func() int64 {
			if cache == nil {
				return 0
			}
			return cache.Misses.Value()
		})
	e.Counter("registry_constraint_cache_invalidations_total",
		"Constraint cache entries dropped by life-cycle writes.",
		func() int64 {
			if cache == nil {
				return 0
			}
			return cache.Invalidations.Value()
		})
	e.Gauge("registry_constraint_cache_entries",
		"Parsed constraints currently cached.",
		func() float64 {
			if cache == nil {
				return 0
			}
			return float64(cache.Len())
		})

	// Preserialized response cache (the zero-allocation serving edge).
	// A registry built without the cache reads every series as zero.
	rc := r.RespCache
	e.Counter("registry_respcache_hits_total",
		"Discovery requests answered from a preserialized cached response.",
		func() int64 {
			if rc == nil {
				return 0
			}
			return rc.Hits.Value()
		})
	e.Counter("registry_respcache_misses_total",
		"Discovery cache lookups that fell through to the balancer.",
		func() int64 {
			if rc == nil {
				return 0
			}
			return rc.Misses.Value()
		})
	e.Counter("registry_respcache_invalidations_total",
		"Response-cache epoch bumps (life-cycle writes and brownout transitions).",
		func() int64 {
			if rc == nil {
				return 0
			}
			return rc.Invalidations.Value()
		})
	e.Gauge("registry_respcache_entries",
		"Preserialized responses currently cached.",
		func() float64 { return float64(rc.Len()) })

	// The frozen router's request-limit rejects. The router is built
	// lazily by Handler(), so the pointer may be nil at scrape time.
	edgeCount := func(pick func(*router.Router) int64) func() int64 {
		return func() int64 {
			if edge := r.edge.Load(); edge != nil {
				return pick(edge)
			}
			return 0
		}
	}
	e.LabelledCounter("registry_edge_rejected_total",
		"Requests rejected by the frozen router's request limits.", "reason", "path-too-long",
		edgeCount(func(rt *router.Router) int64 { return rt.TooLong.Value() }))
	e.LabelledCounter("registry_edge_rejected_total",
		"Requests rejected by the frozen router's request limits.", "reason", "too-deep",
		edgeCount(func(rt *router.Router) int64 { return rt.TooDeep.Value() }))
	e.LabelledCounter("registry_edge_rejected_total",
		"Requests rejected by the frozen router's request limits.", "reason", "not-found",
		edgeCount(func(rt *router.Router) int64 { return rt.NotFound.Value() }))

	// Collector fault tolerance.
	e.Counter("registry_collector_sweeps_total",
		"Completed NodeStatus collection sweeps.",
		func() int64 { return int64(r.Collector.FaultStats().Sweeps) })
	e.Counter("registry_collector_errors_total",
		"NodeStatus invocations that exhausted their retries and failed.",
		func() int64 { return int64(r.Collector.FaultStats().Errs) })
	e.Counter("registry_collector_timeouts_total",
		"NodeStatus invocation attempts that hit the per-invocation deadline.",
		func() int64 { return r.Telemetry.Timeouts.Value() })
	e.Counter("registry_collector_retries_total",
		"NodeStatus invocation re-attempts after a failure.",
		func() int64 { return r.Telemetry.Retries.Value() })
	e.Counter("registry_collector_breaker_skips_total",
		"Sweep slots skipped because the host's circuit breaker was open.",
		func() int64 { return r.Telemetry.Skipped.Value() })
	e.GaugeVec("registry_breaker_state",
		"Per-host collector breaker state (0 closed, 1 open, 2 half-open).",
		"host", func() map[string]float64 { return r.Telemetry.BreakerState.Snapshot() })

	// NodeState table and its RCU snapshot.
	table := r.Store.NodeState()
	e.Gauge("registry_nodestate_rows",
		"Rows in the NodeState table.",
		func() float64 { return float64(table.Len()) })
	e.GaugeVec("registry_node_load",
		"Last collected CPU load per host.",
		"host", func() map[string]float64 {
			rows := table.Rows()
			out := make(map[string]float64, len(rows))
			for _, row := range rows {
				out[row.Host] = row.Load
			}
			return out
		})
	e.GaugeVec("registry_node_health",
		"Per-host health from the collector (0 healthy, 1 degraded, 2 quarantined).",
		"host", func() map[string]float64 {
			rows := table.Rows()
			out := make(map[string]float64, len(rows))
			for _, row := range rows {
				out[row.Host] = float64(row.Health)
			}
			return out
		})
	e.Gauge("registry_nodestate_snapshot_generation",
		"Publish generation of the installed NodeState snapshot.",
		func() float64 {
			if s := table.Published(); s != nil {
				return float64(s.Gen())
			}
			return 0
		})
	e.Gauge("registry_nodestate_snapshot_age_seconds",
		"Age of the installed NodeState snapshot on the registry clock.",
		func() float64 {
			if s := table.Published(); s != nil {
				return r.Clock.Now().Sub(s.Taken()).Seconds()
			}
			return 0
		})

	// HTTP discovery path.
	d := &r.discovery
	e.Counter("registry_discovery_total",
		"HTTP discovery (GetBindings) requests served.",
		func() int64 { return d.total.Value() })
	e.Counter("registry_discovery_errors_total",
		"HTTP discovery requests that failed (unknown service).",
		func() int64 { return d.errors.Value() })
	e.Counter("registry_discovery_fallback_total",
		"Discoveries where no host was eligible and FallbackAll served the load-ordered list.",
		func() int64 { return d.fallback.Value() })
	e.Counter("registry_discovery_degraded_total",
		"Discoveries served in degraded-static mode (nothing survived filtering).",
		func() int64 { return d.degraded.Value() })
	e.LabelledCounter("registry_discovery_verdicts_total",
		"Binding verdicts assigned by discovery.", "verdict", "eligible",
		func() int64 { return d.eligible.Value() })
	e.LabelledCounter("registry_discovery_verdicts_total",
		"Binding verdicts assigned by discovery.", "verdict", "unknown",
		func() int64 { return d.unknown.Value() })
	e.LabelledCounter("registry_discovery_verdicts_total",
		"Binding verdicts assigned by discovery.", "verdict", "ineligible",
		func() int64 { return d.ineligible.Value() })
	e.LabelledCounter("registry_discovery_verdicts_total",
		"Binding verdicts assigned by discovery.", "verdict", "quarantined",
		func() int64 { return d.quarantined.Value() })
	e.RegisterHistogram("registry_discovery_latency_seconds",
		"HTTP discovery request latency on the registry clock.", d.latency)

	// Balance quality: how evenly discovery is actually spreading clients,
	// rolled up once per collector sweep (the paper's central claim, now
	// measured rather than assumed).
	bal := r.Balance
	e.CounterVec("registry_balance_assignments_total",
		"Discovery answers that directed a client to each host.",
		"host", func() map[string]int64 { return bal.AssignmentsSnapshot() })
	e.Gauge("registry_balance_fairness_index",
		"Jain's fairness index of per-host assignments over the last non-idle collector sweep (1 = perfectly even).",
		bal.FairnessIndex)
	e.Gauge("registry_balance_capacity_skew",
		"Worst host's assignment share relative to its memory-capacity share over the last non-idle sweep (1 = capacity-proportional).",
		bal.CapacitySkew)
	e.Counter("registry_balance_rollups_total",
		"Balance fairness rollups performed (one per collector sweep).",
		bal.Rollups)
	e.RegisterHistogram("registry_balance_staleness_seconds",
		"Age of the NodeState snapshot behind each served discovery answer.",
		bal.StalenessHistogram())

	// SLO burn rates over the discovery counters: 1 consumes the error
	// budget exactly as fast as the objective allows.
	slo := r.SLOEngine
	e.GaugeVec("registry_slo_availability_burn_rate",
		"Discovery availability error-budget burn rate per lookback window.",
		"window", func() map[string]float64 {
			rates := slo.BurnRates()
			out := make(map[string]float64, len(rates))
			for w, b := range rates {
				out[w] = b.Availability
			}
			return out
		})
	e.GaugeVec("registry_slo_latency_burn_rate",
		"Discovery latency error-budget burn rate per lookback window.",
		"window", func() map[string]float64 {
			rates := slo.BurnRates()
			out := make(map[string]float64, len(rates))
			for w, b := range rates {
				out[w] = b.Latency
			}
			return out
		})

	// Durability (WAL + checkpoints). With no -data-dir the Durable is
	// nil and every series reads zero.
	durable := r.Durable
	e.Counter("registry_wal_appends_total",
		"Mutation records appended to the write-ahead log.",
		func() int64 {
			if durable == nil {
				return 0
			}
			return durable.WAL().Appends()
		})
	e.Counter("registry_wal_fsyncs_total",
		"fsync calls issued by the write-ahead log.",
		func() int64 {
			if durable == nil {
				return 0
			}
			return durable.WAL().Fsyncs()
		})
	e.Counter("registry_wal_bytes_total",
		"Bytes appended to the write-ahead log, framing included.",
		func() int64 {
			if durable == nil {
				return 0
			}
			return durable.WAL().Bytes()
		})
	e.Gauge("registry_wal_segments",
		"Live write-ahead-log segment files on disk.",
		func() float64 {
			if durable == nil {
				return 0
			}
			return float64(durable.WAL().SegmentCount())
		})
	e.Counter("registry_wal_replay_records_total",
		"WAL records replayed by boot recovery.",
		func() int64 {
			if durable == nil {
				return 0
			}
			return durable.ReplayedRecords()
		})
	e.Counter("registry_checkpoints_total",
		"Atomic checkpoints written since boot.",
		func() int64 {
			if durable == nil {
				return 0
			}
			return durable.Checkpoints()
		})
	e.Gauge("registry_checkpoint_duration_seconds",
		"Wall time of the most recent checkpoint on the registry clock.",
		func() float64 {
			if durable == nil {
				return 0
			}
			return durable.LastCheckpointSeconds()
		})
	e.Gauge("registry_wal_degraded",
		"1 when a disk-write failure has flipped the registry read-only.",
		func() float64 {
			if durable != nil && durable.Degraded() {
				return 1
			}
			return 0
		})

	// Replication. On a leader the families read the stream-serving side
	// (position = committed WAL cursor, connected = active follower
	// streams); on a follower they read the tailer (position = applied
	// leader position, lag = leader seq minus applied seq). A standalone
	// registry reads every series as zero.
	e.GaugeVec("registry_repl_position",
		"Replication position: the leader's committed WAL cursor, or the follower's applied leader position.",
		"part",
		func() map[string]float64 {
			if f := r.follower.Load(); f != nil {
				st := f.Stats()
				return map[string]float64{
					"segment": float64(st.Applied.Segment),
					"offset":  float64(st.Applied.Offset),
					"seq":     float64(st.AppliedSeq),
				}
			}
			if r.ReplLeader != nil {
				st := r.ReplLeader.Stats()
				return map[string]float64{
					"segment": float64(st.Position.Segment),
					"offset":  float64(st.Position.Offset),
					"seq":     float64(st.Seq),
				}
			}
			return map[string]float64{}
		})
	e.Gauge("registry_repl_lag_records",
		"Records the follower is behind the leader's committed sequence (0 on a leader).",
		func() float64 {
			if f := r.follower.Load(); f != nil {
				return float64(f.Stats().LagRecords)
			}
			return 0
		})
	e.Gauge("registry_repl_lag_seconds",
		"Seconds since the follower last applied a record or confirmed it was caught up (0 while connected and caught up).",
		func() float64 {
			if f := r.follower.Load(); f != nil {
				return f.Stats().LagSeconds
			}
			return 0
		})
	e.Gauge("registry_repl_connected",
		"Follower: 1 while the last poll succeeded. Leader: follower streams being served right now.",
		func() float64 {
			if f := r.follower.Load(); f != nil {
				if f.Stats().Connected {
					return 1
				}
				return 0
			}
			if r.ReplLeader != nil {
				return float64(r.ReplLeader.Stats().ActiveStreams)
			}
			return 0
		})
	e.Counter("registry_repl_applied_total",
		"Replicated records applied by this follower (0 on a leader).",
		func() int64 {
			if f := r.follower.Load(); f != nil {
				return f.Stats().AppliedTotal
			}
			return 0
		})
	e.Counter("registry_repl_errors_total",
		"Replication errors: failed polls or applies on a follower, failed stream serves on a leader.",
		func() int64 {
			if f := r.follower.Load(); f != nil {
				return f.Stats().ErrorsTotal
			}
			if r.ReplLeader != nil {
				return r.ReplLeader.Stats().ErrorsTotal
			}
			return 0
		})

	// Tracing.
	e.Counter("registry_traces_sampled_total",
		"Discovery traces finished into the trace ring.",
		func() int64 { return r.Tracer.SampledTotal() })
	e.Gauge("registry_trace_sample_rate",
		"Trace sampling rate (every Nth request; 0 disabled).",
		func() float64 { return float64(r.Tracer.Sample()) })

	// Admission control and the brownout ladder. A nil controller (no
	// Config.Admission) reads every series as zero.
	ctrl := r.Admission
	stats := func(class admit.Class) admit.ClassStats {
		if ctrl == nil {
			return admit.ClassStats{}
		}
		return ctrl.ClassStats(class)
	}
	for _, class := range []admit.Class{admit.ClassDiscovery, admit.ClassLCM} {
		class := class
		label := class.String()
		e.LabelledCounter("registry_admission_admitted_total",
			"Requests granted an in-flight slot, immediately or via the wait queue.", "class", label,
			func() int64 { return stats(class).Admitted })
		e.LabelledCounter("registry_admission_shed_total",
			"Requests rejected early with 503 + Retry-After.", "class", label,
			func() int64 { return stats(class).Shed })
		e.LabelledCounter("registry_admission_queued_total",
			"Requests that waited in the bounded FIFO queue for a slot.", "class", label,
			func() int64 { return stats(class).Queued })
		e.LabelledCounter("registry_admission_queue_timeouts_total",
			"Queued requests shed because no slot freed within the queue timeout.", "class", label,
			func() int64 { return stats(class).QueueTimeouts })
		e.LabelledCounter("registry_admission_deadline_exceeded_total",
			"Admitted requests that blew their per-class deadline budget.", "class", label,
			func() int64 { return stats(class).DeadlineExceeded })
	}
	e.GaugeVec("registry_admission_inflight",
		"Requests currently executing, per admission class.",
		"class", func() map[string]float64 {
			return map[string]float64{
				admit.ClassDiscovery.String(): float64(stats(admit.ClassDiscovery).InFlight),
				admit.ClassLCM.String():       float64(stats(admit.ClassLCM).InFlight),
			}
		})
	e.GaugeVec("registry_admission_queue_depth",
		"Requests currently waiting for a slot, per admission class.",
		"class", func() map[string]float64 {
			return map[string]float64{
				admit.ClassDiscovery.String(): float64(stats(admit.ClassDiscovery).QueueDepth),
				admit.ClassLCM.String():       float64(stats(admit.ClassLCM).QueueDepth),
			}
		})
	e.GaugeVec("registry_admission_accept_rate",
		"AIMD shedder accept rate for saturated arrivals, per admission class.",
		"class", func() map[string]float64 {
			return map[string]float64{
				admit.ClassDiscovery.String(): stats(admit.ClassDiscovery).AcceptRate,
				admit.ClassLCM.String():       stats(admit.ClassLCM).AcceptRate,
			}
		})
	e.Gauge("registry_brownout_tier",
		"Current brownout ladder tier (0 nominal, 1 no-trace, 2 stale, 3 static).",
		func() float64 {
			if ctrl == nil {
				return 0
			}
			return float64(ctrl.Tier())
		})
	e.Counter("registry_brownout_transitions_total",
		"Brownout ladder transitions since boot.",
		func() int64 {
			if ctrl == nil {
				return 0
			}
			return ctrl.TierChanges()
		})

	return e
}

// handleMetrics serves /registry/metrics in the Prometheus text
// exposition format.
func (r *Registry) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.expo.WriteTo(w)
}

// handleTraces serves /registry/traces: the most recent sampled discovery
// traces, newest first; ?id= returns a single trace, ?n= bounds the list.
func (r *Registry) handleTraces(w http.ResponseWriter, req *http.Request) {
	if id := req.URL.Query().Get("id"); id != "" {
		t := r.Tracer.Get(id)
		if t == nil {
			http.Error(w, "trace not found (aged out of the ring?)", http.StatusNotFound)
			return
		}
		writeJSON(w, t.Export())
		return
	}
	n, _ := strconv.Atoi(req.URL.Query().Get("n"))
	recent := r.Tracer.Recent(n)
	out := struct {
		SampleRate int               `json:"sampleRate"`
		Sampled    int64             `json:"sampledTotal"`
		Traces     []obs.TraceExport `json:"traces"`
	}{
		SampleRate: r.Tracer.Sample(),
		Sampled:    r.Tracer.SampledTotal(),
		Traces:     make([]obs.TraceExport, 0, len(recent)),
	}
	for _, t := range recent {
		out.Traces = append(out.Traces, t.Export())
	}
	writeJSON(w, out)
}

// mountPprof attaches net/http/pprof to the registry's frozen router.
// The default ServeMux registration in the pprof package is bypassed
// deliberately — profiling endpoints appear only when the -pprof flag
// opted in. They bypass admission: profiling an overloaded process is
// the whole point. The index serves a subtree (named profiles live under
// /debug/pprof/<name>), so it registers as the one prefix route.
func mountPprof(mux *router.Router) {
	//repolint:admit-exempt profiling must work while the edge sheds
	mux.HandlePrefixFunc("/debug/pprof/", pprof.Index)
	//repolint:admit-exempt profiling must work while the edge sheds
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	//repolint:admit-exempt profiling must work while the edge sheds
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	//repolint:admit-exempt profiling must work while the edge sheds
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	//repolint:admit-exempt profiling must work while the edge sheds
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
