package registry

// Flight-recorder and diagnostic-bundle HTTP suite: records present on
// edge cache hits (the path that bypasses tracing entirely), filter
// parameters, ring wraparound, a concurrent hammer for -race, every
// bundle section, the opt-in goroutine dump, and the /registry/health
// per-component rollup across degraded and brownout transitions.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/simclock"
	"repro/internal/store"
)

// flightPageJSON mirrors the /registry/flight envelope for decoding.
type flightPageJSON struct {
	Written uint64                `json:"written"`
	Ring    int                   `json:"ring"`
	Records []flight.RecordExport `json:"records"`
}

// getFlight fetches /registry/flight with the given query string.
func getFlight(t *testing.T, srv *httptest.Server, query string) flightPageJSON {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/registry/flight" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight status = %d (body %q)", resp.StatusCode, body)
	}
	var page flightPageJSON
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("flight page: %v (body %q)", err, body)
	}
	return page
}

// TestFlightRecordsCacheHits is the tentpole claim: the warm FastServe
// path, which bypasses tracing and per-request metrics contexts, still
// leaves one complete wide-event record per request.
func TestFlightRecordsCacheHits(t *testing.T) {
	reg, srv, _ := newCachedRegistry(t, nil, 0)

	getBindings(t, srv, "Adder")
	getBindings(t, srv, "Adder")
	if reg.RespCache.Hits.Value() == 0 {
		t.Fatal("second discovery did not hit the response cache")
	}

	page := getFlight(t, srv, "")
	if page.Written < 2 {
		t.Fatalf("written = %d, want >= 2", page.Written)
	}
	hits := getFlight(t, srv, "?hit=true&route=bindings")
	if len(hits.Records) == 0 {
		t.Fatal("no cache-hit records for route=bindings")
	}
	rec := hits.Records[0]
	if !rec.CacheHit {
		t.Fatalf("filtered record not a cache hit: %+v", rec)
	}
	if rec.Route != "bindings" || rec.Outcome != "admitted" || rec.Status != http.StatusOK {
		t.Fatalf("cache-hit envelope wrong: %+v", rec)
	}
	if rec.Host == "" || !strings.HasSuffix(rec.Host, ".sdsu.edu") {
		t.Fatalf("cache-hit record lost the chosen host: %+v", rec)
	}
	if rec.Verdict != "filtered" {
		t.Fatalf("verdict = %q, want filtered (PolicyFilter decision): %+v", rec.Verdict, rec)
	}
	if rec.SnapshotGen == 0 {
		t.Fatalf("cache-hit record lost the snapshot generation: %+v", rec)
	}
	if rec.Eligible == 0 {
		t.Fatalf("cache-hit record lost the eligibility counts: %+v", rec)
	}

	// The miss (first request) is the hit=false complement.
	misses := getFlight(t, srv, "?hit=false&route=bindings")
	if len(misses.Records) == 0 {
		t.Fatal("no cache-miss record for the first request")
	}

	// Unknown-service discovery serves a client error; the record says so.
	resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=Nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	errs := getFlight(t, srv, "?outcome=client-error")
	if len(errs.Records) == 0 {
		t.Fatal("client error left no flight record")
	}
}

// TestFlightFilterParams covers the filter surface: n bounds, host match,
// and a 400 on each malformed parameter.
func TestFlightFilterParams(t *testing.T) {
	_, srv, _ := newCachedRegistry(t, nil, 0)
	for i := 0; i < 5; i++ {
		getBindings(t, srv, "Adder")
	}
	if page := getFlight(t, srv, "?n=2"); len(page.Records) != 2 {
		t.Fatalf("n=2 returned %d records", len(page.Records))
	}
	all := getFlight(t, srv, "")
	host := all.Records[0].Host
	if host == "" {
		t.Fatalf("newest record has no host: %+v", all.Records[0])
	}
	for _, rec := range getFlight(t, srv, "?host="+host).Records {
		if rec.Host != host {
			t.Fatalf("host filter leaked %+v", rec)
		}
	}
	for _, bad := range []string{"?n=0", "?n=x", "?route=nope", "?outcome=nope", "?hit=maybe"} {
		resp, err := srv.Client().Get(srv.URL + "/registry/flight" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestFlightRingWraparound overflows a deliberately tiny ring and checks
// the ring keeps the newest records, newest first.
func TestFlightRingWraparound(t *testing.T) {
	reg, err := New(Config{
		Clock:          simclock.NewManual(t0),
		Policy:         core.PolicyFilter,
		SnapshotMaxAge: 25 * time.Second,
		FlightRing:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedWorker(t, reg, "thermo.sdsu.edu")
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0,
	})
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	const requests = 20
	for i := 0; i < requests; i++ {
		getBindings(t, srv, "Worker")
	}
	page := getFlight(t, srv, "?n=100")
	if page.Ring != 8 {
		t.Fatalf("ring size = %d, want 8", page.Ring)
	}
	if page.Written < requests {
		t.Fatalf("written = %d, want >= %d", page.Written, requests)
	}
	// The flight fetch itself is not a service route, so exactly the last
	// 8 service requests survive.
	if len(page.Records) != 8 {
		t.Fatalf("snapshot has %d records, want 8 after wraparound", len(page.Records))
	}
	for i := 1; i < len(page.Records); i++ {
		if page.Records[i-1].Seq < page.Records[i].Seq {
			t.Fatalf("records not newest-first: %d before %d",
				page.Records[i-1].Seq, page.Records[i].Seq)
		}
	}
}

// TestFlightDisabled turns the recorder off and checks the endpoint 404s
// while discovery still serves.
func TestFlightDisabled(t *testing.T) {
	reg, err := New(Config{
		Clock:      simclock.NewManual(t0),
		Policy:     core.PolicyStock,
		FlightRing: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedWorker(t, reg, "thermo.sdsu.edu")
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	getBindings(t, srv, "Worker")
	resp, err := srv.Client().Get(srv.URL + "/registry/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flight with recorder disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestFlightConcurrentHammer pounds discovery (warm cache hits writing
// the ring) while readers snapshot it — the seqlock's -race contract.
func TestFlightConcurrentHammer(t *testing.T) {
	_, srv, _ := newCachedRegistry(t, nil, 0)
	getBindings(t, srv, "Adder") // warm the cache

	const writers, readers, rounds = 4, 2, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=Adder")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := srv.Client().Get(srv.URL + "/registry/flight?n=500")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	page := getFlight(t, srv, "?n=500")
	if page.Written < writers*rounds {
		t.Fatalf("written = %d, want >= %d", page.Written, writers*rounds)
	}
}

// bundleJSON mirrors the /registry/debug/bundle document for decoding.
type bundleJSON struct {
	At      string                     `json:"at"`
	Config  map[string]interface{}     `json:"config"`
	Health  map[string]json.RawMessage `json:"health"`
	Metrics string                     `json:"metrics"`
	Flight  []flight.RecordExport      `json:"flight"`
	Traces  []json.RawMessage          `json:"traces"`
	WAL     *struct {
		Segments int64 `json:"segments"`
	} `json:"wal"`
	BrownoutTier int                        `json:"brownoutTier"`
	SLO          map[string]json.RawMessage `json:"slo"`
	Balance      map[string]int64           `json:"balanceAssignments"`
	Goroutines   string                     `json:"goroutines"`
}

func getBundle(t *testing.T, srv *httptest.Server, query string) bundleJSON {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/registry/debug/bundle" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle status = %d (body %q)", resp.StatusCode, body)
	}
	var doc bundleJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bundle: %v", err)
	}
	return doc
}

// TestBundleSections checks every section of the one-shot bundle is
// present and carries live data after a little traffic.
func TestBundleSections(t *testing.T) {
	_, srv, _ := newCachedRegistry(t, nil, 0)
	getBindings(t, srv, "Adder")
	getBindings(t, srv, "Adder")

	doc := getBundle(t, srv, "")
	if doc.At == "" {
		t.Error("bundle missing timestamp")
	}
	if doc.Config["policy"] != "filter" {
		t.Errorf("bundle config policy = %v, want filter", doc.Config["policy"])
	}
	if doc.Config["respCacheEnabled"] != true {
		t.Errorf("bundle config respCacheEnabled = %v", doc.Config["respCacheEnabled"])
	}
	for _, comp := range []string{"collector", "wal", "admission", "edgecache", "balance"} {
		if _, ok := doc.Health[comp]; !ok {
			t.Errorf("bundle health missing component %q", comp)
		}
	}
	if !strings.Contains(doc.Metrics, "registry_balance_fairness_index") {
		t.Error("bundle metrics snapshot missing registry_balance_fairness_index")
	}
	if len(doc.Flight) < 2 {
		t.Errorf("bundle has %d flight records, want >= 2", len(doc.Flight))
	}
	if doc.WAL != nil {
		t.Errorf("bundle WAL section = %+v for an in-memory registry, want null", doc.WAL)
	}
	for _, window := range []string{"5m", "1h"} {
		if _, ok := doc.SLO[window]; !ok {
			t.Errorf("bundle SLO missing window %q", window)
		}
	}
	if doc.Goroutines != "" {
		t.Error("goroutine dump present without opt-in")
	}

	withG := getBundle(t, srv, "?goroutines=1")
	if !strings.Contains(withG.Goroutines, "goroutine") {
		t.Error("opt-in goroutine dump empty")
	}
	if n := len(getBundle(t, srv, "?n=1").Flight); n != 1 {
		t.Errorf("bundle n=1 carried %d flight records", n)
	}
	resp, err := srv.Client().Get(srv.URL + "/registry/debug/bundle?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bundle bad n: status %d, want 400", resp.StatusCode)
	}
}

// healthJSON mirrors the extended /registry/health response.
type healthJSON struct {
	Status     string `json:"status"`
	Components map[string]struct {
		Status string             `json:"status"`
		Note   string             `json:"note"`
		Values map[string]float64 `json:"values"`
	} `json:"components"`
}

func getHealth(t *testing.T, srv *httptest.Server) healthJSON {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/registry/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	var h healthJSON
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health: %v", err)
	}
	return h
}

// TestHealthRollupTransitions walks the rollup through its states: all-ok
// at rest, degraded while a host is quarantined, degraded again while the
// brownout ladder is engaged, and back to ok after recovery.
func TestHealthRollupTransitions(t *testing.T) {
	adm := admitTestConfig()
	reg := newAdmitRegistry(t, adm, core.DegradedEmpty)
	seedWorker(t, reg, "thermo.sdsu.edu", "exergy.sdsu.edu")
	now := reg.Clock.Now()
	for _, h := range []string{"thermo.sdsu.edu", "exergy.sdsu.edu"} {
		reg.Store.NodeState().Upsert(store.NodeState{
			Host: h, Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: now,
		})
	}
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	h := getHealth(t, srv)
	if h.Status != "ok" {
		t.Fatalf("resting status = %q, want ok (components %+v)", h.Status, h.Components)
	}
	for _, comp := range []string{"collector", "wal", "admission", "edgecache", "balance"} {
		if _, ok := h.Components[comp]; !ok {
			t.Fatalf("rollup missing component %q", comp)
		}
	}
	if h.Components["wal"].Status != "disabled" {
		t.Errorf("in-memory registry wal status = %q, want disabled", h.Components["wal"].Status)
	}
	if h.Components["admission"].Status != "ok" {
		t.Errorf("nominal admission status = %q, want ok", h.Components["admission"].Status)
	}

	// Quarantine a host: the collector component (and the overall status)
	// must go degraded.
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "exergy.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
		Updated: now, Health: store.HealthQuarantined,
	})
	h = getHealth(t, srv)
	if h.Status != "degraded" || h.Components["collector"].Status != "degraded" {
		t.Fatalf("quarantine not reflected: status %q, collector %+v",
			h.Status, h.Components["collector"])
	}

	// Clear it, then engage the brownout ladder: admission goes degraded.
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "exergy.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
		Updated: now,
	})
	if h = getHealth(t, srv); h.Status != "ok" {
		t.Fatalf("status after quarantine cleared = %q, want ok", h.Status)
	}
	driveDiscoveryOverload(reg, 2*time.Second)
	if reg.Admission.Tier() == admit.TierNominal {
		t.Fatal("overload driver did not engage the ladder")
	}
	h = getHealth(t, srv)
	if h.Status != "degraded" || h.Components["admission"].Status != "degraded" {
		t.Fatalf("brownout not reflected: status %q, admission %+v",
			h.Status, h.Components["admission"])
	}
	if h.Components["admission"].Values["tier"] == 0 {
		t.Errorf("admission tier value missing: %+v", h.Components["admission"])
	}

	// Calm recovers the ladder and the rollup.
	calmDiscovery(reg, 200)
	h = getHealth(t, srv)
	if h.Status != "ok" || h.Components["admission"].Status != "ok" {
		t.Fatalf("rollup did not recover: status %q, admission %+v",
			h.Status, h.Components["admission"])
	}
}
