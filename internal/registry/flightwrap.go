// flightwrap.go wires the flight recorder into the edge: every service
// route is wrapped in a pooled flight.Writer frame OUTSIDE the admission
// middleware, so shed requests are recorded too, and the FastServe
// cache-hit path — which bypasses tracing, metrics contexts, and the
// deadline budget — still leaves one fixed-size record per request.
package registry

import (
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/flight"
)

// flightRoute is the per-route edge wrapper. It is a named type rather
// than a closure so the recording path carries no captured variables and
// lints clean under the hot-path allocation analyzer.
type flightRoute struct {
	reg    *Registry
	route  flight.Route
	viaCtx bool // SOAP routes thread the frame through the context
	next   http.Handler
}

// flightWrap wraps next so that each request borrows a pooled frame,
// runs, and appends exactly one record to the ring. A registry without a
// ring (Config.FlightRing < 0) wraps nothing.
func (r *Registry) flightWrap(route flight.Route, viaCtx bool, next http.Handler) http.Handler {
	if r.Flight == nil {
		return next
	}
	return &flightRoute{reg: r, route: route, viaCtx: viaCtx, next: next}
}

// ServeHTTP borrows a frame, stamps the envelope (route, tier, timing),
// runs the wrapped stack with the frame as the ResponseWriter, derives
// the admission outcome from the served status, and appends the record.
//
//repolint:hotpath runs on every edge request including warm cache hits
func (fr *flightRoute) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	fw := flight.GetWriter(w)
	fw.Rec.Route = fr.route
	if fr.viaCtx {
		// The SOAP dispatch path never sees the ResponseWriter, so the
		// frame rides the context there. That derivation allocates, which
		// the SOAP surface pays per request anyway.
		req = req.WithContext(flight.WithFrame(req.Context(), fw))
	}
	start := fr.reg.Clock.Now()
	fr.next.ServeHTTP(fw, req)
	end := fr.reg.Clock.Now()
	fw.Rec.Unix = start.UnixNano()
	fw.Rec.Latency = end.Sub(start)
	fw.Rec.Tier = uint8(fr.reg.edgeTier())
	fw.Finish()
	fr.reg.Flight.Append(&fw.Rec)
	flight.PutWriter(fw)
}

// noteDecision copies the constraint verdict, eligibility counts, and
// snapshot generation of a discovery decision into a flight record.
//
//repolint:hotpath annotates cache hits on the 0-alloc serving path
func noteDecision(rec *flight.Record, dec *core.Decision) {
	switch {
	case dec.Degraded:
		rec.Verdict = flight.VerdictDegraded
	case dec.FellBack:
		rec.Verdict = flight.VerdictFallback
	case !dec.TimeWindowOK:
		rec.Verdict = flight.VerdictWindowClosed
	case dec.Filtered:
		rec.Verdict = flight.VerdictFiltered
	default:
		rec.Verdict = flight.VerdictStock
	}
	rec.SnapshotGen = dec.SnapshotGen
	rec.Eligible = flight.Sat8(dec.Eligible())
	rec.Unknown = flight.Sat8(dec.Unknown())
	rec.Ineligible = flight.Sat8(dec.Ineligible())
	rec.Quarantined = flight.Sat8(dec.Quarantined())
}

// chosenHost resolves the host that will actually receive the client —
// the host of the first returned URI — from the decision's binding rows.
func chosenHost(uris []string, dec *core.Decision) string {
	if len(uris) == 0 {
		return ""
	}
	for i := range dec.Bindings {
		if dec.Bindings[i].AccessURI == uris[0] {
			return dec.Bindings[i].Host
		}
	}
	return ""
}

// handleFlight serves GET /registry/flight: the newest matching records
// from the ring, newest first. Query parameters: n (max records, default
// 100), route, outcome, host, and hit=true|false.
func (r *Registry) handleFlight(w http.ResponseWriter, req *http.Request) {
	if r.Flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	var f flight.Filter
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	if v := q.Get("route"); v != "" {
		rt, ok := flight.RouteByName(v)
		if !ok {
			http.Error(w, "unknown route class", http.StatusBadRequest)
			return
		}
		f.Route, f.HasRoute = rt, true
	}
	if v := q.Get("outcome"); v != "" {
		oc, ok := flight.OutcomeByName(v)
		if !ok {
			http.Error(w, "unknown outcome", http.StatusBadRequest)
			return
		}
		f.Outcome, f.HasOutcome = oc, true
	}
	f.Host = q.Get("host")
	if v := q.Get("hit"); v != "" {
		hit, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "bad hit parameter", http.StatusBadRequest)
			return
		}
		f.CacheHit, f.HasCacheHit = hit, true
	}
	recs := r.Flight.Snapshot(f)
	writeJSON(w, flightPage{
		Written: r.Flight.Written(),
		Ring:    r.Flight.Len(),
		Records: flight.ExportAll(recs),
	})
}

// flightPage is the /registry/flight response envelope.
type flightPage struct {
	Written uint64                `json:"written"`
	Ring    int                   `json:"ring"`
	Records []flight.RecordExport `json:"records"`
}
