package registry

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/lcm"
	"repro/internal/nodestate"
	"repro/internal/obs"
	"repro/internal/qm"
	"repro/internal/repl"
	"repro/internal/respcache"
	"repro/internal/rim"
	"repro/internal/router"
	"repro/internal/soap"
	"repro/internal/sqlq"
)

// Handler builds the registry's HTTP surface:
//
//	POST /soap/registry   — ebRS life-cycle + query protocols over SOAP
//	POST /soap/auth       — registration / challenge / login handshake
//	GET  /registry/...    — the mandatory HTTP (REST) binding, which per
//	                        thesis §2.2.3 "only supports search queries"
//	                        (QueryManager only, no publishing)
//
// Every route passes through the admission controller (a nil controller
// wraps nothing): the SOAP surface under the LCM class, the REST reads
// under the discovery class. Health, metrics, traces, nodestate, and the
// UI are always-admit — operators must be able to see in precisely when
// the edge is shedding — and carry //repolint:admit-exempt for the
// deadline analyzer.
//
// The routes live in a frozen-mode static router: every pattern is
// registered here, then the table is frozen before the first request, so
// dispatch is a single map read with no locking. Handler is built once
// and cached; repeated calls return the same frozen edge.
func (r *Registry) Handler() http.Handler {
	r.handlerOnce.Do(func() { r.handler = r.buildHandler() })
	return r.handler
}

func (r *Registry) buildHandler() http.Handler {
	mux := router.New(r.edgeCfg)
	adm := r.Admission
	var maxBody int64
	if adm != nil {
		maxBody = adm.Config().MaxBodyBytes
	}
	mux.Handle("/soap/registry", r.flightWrap(flight.RouteSOAPRegistry, true, adm.Wrap(admit.ClassLCM, admit.RejectSOAP,
		limitBody(maxBody, soap.EndpointCtx(r.handleRegistrySOAP)))))
	mux.Handle("/soap/auth", r.flightWrap(flight.RouteSOAPAuth, false, adm.Wrap(admit.ClassLCM, admit.RejectSOAP,
		limitBody(maxBody, soap.Endpoint(r.handleAuthSOAP)))))
	mux.Handle("/registry/object", r.flightWrap(flight.RouteObject, false, adm.Wrap(admit.ClassDiscovery, admit.RejectJSON, http.HandlerFunc(r.handleGetObject))))
	mux.Handle("/registry/find", r.flightWrap(flight.RouteFind, false, adm.Wrap(admit.ClassDiscovery, admit.RejectJSON, http.HandlerFunc(r.handleFind))))
	mux.Handle("/registry/bindings", r.flightWrap(flight.RouteBindings, false, adm.Wrap(admit.ClassDiscovery, admit.RejectJSON, &bindingsEdge{reg: r})))
	mux.Handle("/registry/query", r.flightWrap(flight.RouteQuery, false, adm.Wrap(admit.ClassDiscovery, admit.RejectJSON, http.HandlerFunc(r.handleQuery))))
	mux.Handle("/registry/content", r.flightWrap(flight.RouteContent, false, adm.Wrap(admit.ClassDiscovery, admit.RejectJSON, http.HandlerFunc(r.handleContent))))
	//repolint:admit-exempt nodestate is the operator's view of collector state
	mux.HandleFunc("/registry/nodestate", r.handleNodeState)
	//repolint:admit-exempt health must answer while the edge sheds
	mux.HandleFunc("/registry/health", r.handleHealth)
	//repolint:admit-exempt metrics must answer while the edge sheds
	mux.HandleFunc("/registry/metrics", r.handleMetrics)
	//repolint:admit-exempt trace retrieval is an operator diagnostic
	mux.HandleFunc("/registry/traces", r.handleTraces)
	//repolint:admit-exempt flight retrieval is an operator diagnostic
	mux.HandleFunc("/registry/flight", r.handleFlight)
	//repolint:admit-exempt the bundle is how operators debug a shedding node
	mux.HandleFunc("/registry/debug/bundle", r.handleBundle)
	//repolint:admit-exempt the operator UI stays reachable during incidents
	mux.HandleFunc("/ui", r.handleUI)
	if r.ReplLeader != nil {
		//repolint:admit-exempt the replication stream must keep followers fed while the edge sheds
		mux.HandleFunc(repl.PathWAL, r.ReplLeader.ServeWAL)
		//repolint:admit-exempt follower bootstrap must proceed while the edge sheds
		mux.HandleFunc(repl.PathCheckpoint, r.ReplLeader.ServeCheckpoint)
	}
	if r.pprof {
		mountPprof(mux)
	}
	mux.Freeze()
	r.edge.Store(mux)
	return mux
}

// HardenedServer builds an http.Server with conservative edge limits so
// slow or malicious clients cannot hold connections open for free:
// bounded header read, bounded whole-request read, bounded keep-alive
// idle, and a small header cap (request bodies are bounded separately by
// limitBody under the admission controller's MaxBodyBytes). WriteTimeout
// stays unset deliberately — /debug/pprof/profile streams for its whole
// sampling window and a write cap would sever it.
func HardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

// limitBody caps request bodies with http.MaxBytesReader so a giant SOAP
// envelope cannot hold the connection and exhaust memory; reads past n
// fail and poison the connection. n <= 0 leaves the body unbounded.
func limitBody(n int64, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		req.Body = http.MaxBytesReader(w, req.Body, n)
		next.ServeHTTP(w, req)
	})
}

// soapRequest is the union envelope body for /soap/registry: exactly one
// member protocol element is set per request.
type soapRequest struct {
	XMLName     struct{}                   `xml:"RegistryRequest"`
	Submit      *SubmitObjectsRequest      `xml:"SubmitObjectsRequest"`
	Update      *UpdateObjectsRequest      `xml:"UpdateObjectsRequest"`
	Approve     *ApproveObjectsRequest     `xml:"ApproveObjectsRequest"`
	Deprecate   *DeprecateObjectsRequest   `xml:"DeprecateObjectsRequest"`
	Undeprecate *UndeprecateObjectsRequest `xml:"UndeprecateObjectsRequest"`
	Remove      *RemoveObjectsRequest      `xml:"RemoveObjectsRequest"`
	Relocate    *RelocateObjectsRequest    `xml:"RelocateObjectsRequest"`
	GetObject   *GetObjectRequest          `xml:"GetObjectRequest"`
	Find        *FindObjectsRequest        `xml:"FindObjectsRequest"`
	Query       *AdhocQueryWireRequest     `xml:"AdhocQueryRequest"`
	Bindings    *GetBindingsRequest        `xml:"GetBindingsRequest"`
	Subscribe   *SubscribeRequest          `xml:"SubscribeRequest"`
	Unsubscribe *UnsubscribeRequest        `xml:"UnsubscribeRequest"`
}

func (r *Registry) handleRegistrySOAP(ctx context.Context, req *soapRequest) (interface{}, error) {
	// A per-class deadline that fired while the request waited in the
	// admission queue fails fast with a typed fault before any work (or
	// write) starts.
	if err := ctx.Err(); err != nil {
		return nil, &soap.Fault{Code: "Server.Timeout", String: "request deadline exceeded before dispatch", Detail: err.Error()}
	}
	// A follower never applies writes locally — replication is the only
	// mutation path — so every write protocol redirects to the leader.
	// Reads (GetObject/Find/Query/Bindings) keep serving from local state.
	if r.replFollow != "" && isWriteRequest(req) {
		return nil, r.notLeader("/soap/registry")
	}
	switch {
	case req.Submit != nil:
		return r.doSubmit(ctx, req.Submit)
	case req.Update != nil:
		return r.doUpdate(ctx, req.Update)
	case req.Approve != nil:
		sess, err := r.sessionOrFault(req.Approve.Session)
		if err != nil {
			return nil, err
		}
		return ack(req.Approve.IDs, r.LCM.ApproveObjects(sess, req.Approve.IDs...))
	case req.Deprecate != nil:
		sess, err := r.sessionOrFault(req.Deprecate.Session)
		if err != nil {
			return nil, err
		}
		return ack(req.Deprecate.IDs, r.LCM.DeprecateObjects(sess, req.Deprecate.IDs...))
	case req.Undeprecate != nil:
		sess, err := r.sessionOrFault(req.Undeprecate.Session)
		if err != nil {
			return nil, err
		}
		return ack(req.Undeprecate.IDs, r.LCM.UndeprecateObjects(sess, req.Undeprecate.IDs...))
	case req.Remove != nil:
		sess, err := r.sessionOrFault(req.Remove.Session)
		if err != nil {
			return nil, err
		}
		return ack(req.Remove.IDs, r.LCM.RemoveObjects(sess, req.Remove.IDs...))
	case req.Relocate != nil:
		sess, err := r.sessionOrFault(req.Relocate.Session)
		if err != nil {
			return nil, err
		}
		return ack(req.Relocate.IDs, r.LCM.RelocateObjects(sess, req.Relocate.Home, req.Relocate.IDs...))
	case req.GetObject != nil:
		return r.doGetObject(req.GetObject)
	case req.Find != nil:
		return r.doFind(req.Find)
	case req.Query != nil:
		return r.doQuery(req.Query)
	case req.Bindings != nil:
		return r.doBindings(ctx, req.Bindings)
	case req.Subscribe != nil:
		return r.doSubscribe(req.Subscribe)
	case req.Unsubscribe != nil:
		return r.doUnsubscribe(req.Unsubscribe)
	default:
		return nil, soap.ClientFault("empty RegistryRequest")
	}
}

// isWriteRequest reports whether a union envelope carries a mutating
// protocol element (subscriptions included: their state is node-local
// in-memory and must live where the event bus fires — the leader).
func isWriteRequest(req *soapRequest) bool {
	return req.Submit != nil || req.Update != nil || req.Approve != nil ||
		req.Deprecate != nil || req.Undeprecate != nil || req.Remove != nil ||
		req.Relocate != nil || req.Subscribe != nil || req.Unsubscribe != nil
}

// sessionOrFault requires an authenticated session for LCM operations
// (§2.2.3: "unauthenticated clients cannot access the LifeCycleManager").
func (r *Registry) sessionOrFault(token string) (lcm.Context, error) {
	if token == "" {
		return lcm.Guest, soap.ClientFault("authentication required for life-cycle operations")
	}
	ctx, err := r.SessionContext(token)
	if err != nil {
		return lcm.Guest, soap.ClientFault("invalid session: %v", err)
	}
	return ctx, nil
}

func ack(ids []string, err error) (interface{}, error) {
	if err != nil {
		return nil, err
	}
	return &RegistryResponse{Status: "Success", IDs: ids}, nil
}

func (r *Registry) doSubmit(ctx context.Context, req *SubmitObjectsRequest) (interface{}, error) {
	sess, err := r.sessionOrFault(req.Session)
	if err != nil {
		return nil, err
	}
	objs, ids, err := decodeAll(req.Objects)
	if err != nil {
		return nil, soap.ClientFault("%v", err)
	}
	if err := r.LCM.SubmitObjectsCtx(ctx, sess, objs...); err != nil {
		return nil, err
	}
	return &RegistryResponse{Status: "Success", IDs: ids}, nil
}

func (r *Registry) doUpdate(ctx context.Context, req *UpdateObjectsRequest) (interface{}, error) {
	sess, err := r.sessionOrFault(req.Session)
	if err != nil {
		return nil, err
	}
	objs, ids, err := decodeAll(req.Objects)
	if err != nil {
		return nil, soap.ClientFault("%v", err)
	}
	if err := r.LCM.UpdateObjectsCtx(ctx, sess, objs...); err != nil {
		return nil, err
	}
	return &RegistryResponse{Status: "Success", IDs: ids}, nil
}

func decodeAll(wires []WireObject) ([]rim.Object, []string, error) {
	objs := make([]rim.Object, 0, len(wires))
	ids := make([]string, 0, len(wires))
	for i := range wires {
		o, err := wires[i].FromWire()
		if err != nil {
			return nil, nil, err
		}
		objs = append(objs, o)
		ids = append(ids, o.Base().ID)
	}
	return objs, ids, nil
}

func (r *Registry) doGetObject(req *GetObjectRequest) (interface{}, error) {
	o, err := r.QM.GetRegistryObject(req.ID)
	if err != nil {
		return nil, soap.ClientFault("%v", err)
	}
	w, err := ToWire(o)
	if err != nil {
		return nil, err
	}
	return &GetObjectResponse{Object: *w}, nil
}

func (r *Registry) doFind(req *FindObjectsRequest) (interface{}, error) {
	t, err := kindToType(req.Kind)
	if err != nil {
		return nil, soap.ClientFault("%v", err)
	}
	resp := &FindObjectsResponse{}
	for _, o := range r.QM.FindObjects(t, req.NamePattern) {
		w, err := ToWire(o)
		if err != nil {
			continue // non-wireable kinds are skipped in listings
		}
		resp.Objects = append(resp.Objects, *w)
	}
	return resp, nil
}

func kindToType(kind string) (rim.ObjectType, error) {
	switch kind {
	case "Organization":
		return rim.TypeOrganization, nil
	case "Service":
		return rim.TypeService, nil
	case "Association":
		return rim.TypeAssociation, nil
	case "User":
		return rim.TypeUser, nil
	case "RegistryPackage":
		return rim.TypeRegistryPackage, nil
	case "ExternalLink":
		return rim.TypeExternalLink, nil
	case "AdhocQuery":
		return rim.TypeAdhocQuery, nil
	case "ClassificationScheme":
		return rim.TypeClassificationScheme, nil
	case "ClassificationNode":
		return rim.TypeClassificationNode, nil
	default:
		return "", fmt.Errorf("registry: unknown object kind %q", kind)
	}
}

func (r *Registry) doQuery(req *AdhocQueryWireRequest) (interface{}, error) {
	params := make(map[string]sqlq.Value, len(req.Params))
	for _, p := range req.Params {
		if p.Type == "number" {
			n, err := strconv.ParseFloat(p.Value, 64)
			if err != nil {
				return nil, soap.ClientFault("bad numeric parameter %s=%q", p.Name, p.Value)
			}
			params[p.Name] = n
		} else {
			params[p.Name] = p.Value
		}
	}
	var resp *qm.AdhocQueryResponse
	var err error
	if req.StoredQueryName != "" {
		resp, err = r.QM.InvokeStoredQuery(req.StoredQueryName, params, req.StartIndex, req.MaxResults)
	} else {
		resp, err = r.QM.SubmitAdhocQuery(qm.AdhocQueryRequest{
			Syntax: req.Syntax, Query: req.Query, Params: params,
			StartIndex: req.StartIndex, MaxResults: req.MaxResults,
		})
	}
	if err != nil {
		return nil, soap.ClientFault("%v", err)
	}
	wire := &AdhocQueryWireResponse{
		StartIndex:        resp.StartIndex,
		TotalResultsCount: resp.TotalResultsCount,
		Columns:           resp.Columns,
	}
	for _, row := range resp.Rows {
		wr := WireRow{Cells: make([]WireCell, len(row))}
		for i, v := range row {
			if v == nil {
				wr.Cells[i] = WireCell{Null: true}
			} else {
				wr.Cells[i] = WireCell{Value: fmt.Sprintf("%v", v)}
			}
		}
		wire.Rows = append(wire.Rows, wr)
	}
	return wire, nil
}

// doBindings runs a discovery request under the caller's context: the
// HTTP request's deadline and cancellation reach the view load, and a
// sampled trace rides the same context into the balancer. When the
// response cache is live and tracing is unsampled, the preserialized
// SOAP envelope is served (or rendered and stored) instead of
// re-marshalling the binding list per request.
func (r *Registry) doBindings(ctx context.Context, req *GetBindingsRequest) (interface{}, error) {
	start := r.Clock.Now()
	space, key := respcache.SpaceName, req.ServiceName
	if req.ServiceID != "" {
		space, key = respcache.SpaceID, req.ServiceID
	}
	if key == "" {
		return nil, soap.ClientFault("GetBindingsRequest needs serviceId or serviceName")
	}
	// Sampled tracing writes a per-request trace id into the response, so
	// caching only engages while sampling is off (brownout TierNoTrace
	// re-enables it under load, exactly when it matters most).
	cacheable := r.RespCache != nil && r.Tracer.Sample() == 0
	gen, taken := r.Balancer.SnapshotMeta(start)
	age := snapshotAge(start, taken)
	var epoch uint64
	var tier uint32
	if cacheable {
		epoch = r.RespCache.Epoch()
		tier = r.edgeTier()
		if e := r.RespCache.Lookup(space, key, gen, tier, start); e != nil && len(e.SOAP) > 0 {
			r.discovery.observe(e.Decision, e.FirstHost, age, r.Clock.Now().Sub(start).Seconds())
			if fw := flight.FrameFrom(ctx); fw != nil {
				fw.Rec.CacheHit = true
				noteDecision(&fw.Rec, &e.Decision)
				fw.Rec.SnapshotAge = age
				fw.Rec.Host = e.FirstHost
			}
			return soap.Raw(e.SOAP), nil
		}
	}
	tr := r.Tracer.Start()
	ctx = obs.WithTrace(ctx, tr)
	var uris []string
	var dec core.Decision
	var err error
	if space == respcache.SpaceID {
		uris, dec, err = r.QM.GetServiceBindingsCtx(ctx, key)
	} else {
		uris, dec, err = r.QM.GetServiceBindingsByNameCtx(ctx, key)
	}
	r.Tracer.Finish(tr)
	if err != nil {
		r.discovery.errors.Inc()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, &soap.Fault{Code: "Server.Timeout", String: "discovery deadline exceeded", Detail: err.Error()}
		}
		return nil, soap.ClientFault("%v", err)
	}
	host := chosenHost(uris, &dec)
	r.discovery.observe(dec, host, age, r.Clock.Now().Sub(start).Seconds())
	if fw := flight.FrameFrom(ctx); fw != nil {
		noteDecision(&fw.Rec, &dec)
		fw.Rec.SnapshotAge = age
		fw.Rec.Host = host
		if tr != nil {
			fw.Rec.Trace = tr.ID
		}
	}
	if cacheable && tr == nil {
		if e := r.renderBindingsEntry(uris, dec, gen, tier, start); e != nil {
			r.RespCache.StoreAt(space, key, e, epoch)
			return soap.Raw(e.SOAP), nil
		}
	}
	resp := &GetBindingsResponse{
		URIs:       uris,
		Filtered:   dec.Filtered,
		Eligible:   dec.Eligible(),
		Unknown:    dec.Unknown(),
		Ineligible: dec.Ineligible(),
		WindowOK:   dec.TimeWindowOK,
	}
	if tr != nil {
		resp.Trace = tr.ID
	}
	return resp, nil
}

// authRequest is the union body for /soap/auth.
type authRequest struct {
	XMLName   struct{}          `xml:"AuthRequest"`
	Register  *RegisterRequest  `xml:"RegisterRequest"`
	Challenge *ChallengeRequest `xml:"ChallengeRequest"`
	Login     *LoginRequest     `xml:"LoginRequest"`
}

func (r *Registry) handleAuthSOAP(req *authRequest) (interface{}, error) {
	// Registrar state (keystore, sessions) is node-local and the Register
	// path writes a User row; on a follower the whole auth protocol lives
	// at the leader, whose tokens the leader then honours for writes.
	if r.replFollow != "" {
		return nil, r.notLeader("/soap/auth")
	}
	switch {
	case req.Register != nil:
		creds, user, err := r.Registrar.Register(req.Register.Alias, req.Register.Password,
			rim.PersonName{FirstName: req.Register.FirstName, LastName: req.Register.LastName})
		if err != nil {
			return nil, soap.ClientFault("%v", err)
		}
		// PutDirect, not Store.Put: the User row must be in the WAL or a
		// crash would orphan the registered account.
		if err := r.LCM.PutDirect(user); err != nil {
			return nil, err
		}
		return &RegisterResponse{UserID: user.ID, CertPEM: string(creds.CertPEM), KeyPEM: string(creds.KeyPEM)}, nil
	case req.Challenge != nil:
		nonce, err := r.Registrar.Challenge(req.Challenge.Alias)
		if err != nil {
			return nil, soap.ClientFault("%v", err)
		}
		return &ChallengeResponse{Nonce: base64.StdEncoding.EncodeToString(nonce)}, nil
	case req.Login != nil:
		sig, err := base64.StdEncoding.DecodeString(req.Login.Signature)
		if err != nil {
			return nil, soap.ClientFault("bad signature encoding: %v", err)
		}
		token, userID, err := r.Registrar.Login(req.Login.Alias, sig)
		if err != nil {
			return nil, soap.ClientFault("%v", err)
		}
		return &LoginResponse{Token: token, UserID: userID}, nil
	default:
		return nil, soap.ClientFault("empty AuthRequest")
	}
}

// --- HTTP GET (REST) binding: QueryManager only --------------------------

// jsonCT is the shared Content-Type header slice: assigning it by key
// into an existing header map allocates nothing, unlike Header().Set.
var jsonCT = []string{"application/json"}

// writeJSON renders v into a pooled buffer and writes the response with
// a single Write — always-hot endpoints like /registry/health used to
// pay a fresh encoder writing straight to the connection per request.
func writeJSON(w http.ResponseWriter, v interface{}) {
	buf := respcache.GetBuffer()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		respcache.PutBuffer(buf)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h["Content-Type"] = jsonCT
	w.Write(buf.Bytes())
	respcache.PutBuffer(buf)
}

func (r *Registry) handleGetObject(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	o, err := r.QM.GetRegistryObject(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	wire, err := ToWire(o)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, wire)
}

func (r *Registry) handleFind(w http.ResponseWriter, req *http.Request) {
	kind := req.URL.Query().Get("kind")
	pattern := req.URL.Query().Get("name")
	t, err := kindToType(kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var out []*WireObject
	for _, o := range r.QM.FindObjects(t, pattern) {
		if wire, err := ToWire(o); err == nil {
			out = append(out, wire)
		}
	}
	writeJSON(w, out)
}

// bindingsBody is the REST discovery response shape, rendered through
// one encoder configuration on both the cached and uncached paths so the
// bytes are identical either way.
type bindingsBody struct {
	URIs       []string `json:"uris"`
	Filtered   bool     `json:"filtered"`
	Eligible   int      `json:"eligible"`
	Unknown    int      `json:"unknown"`
	Ineligible int      `json:"ineligible"`
	WindowOK   bool     `json:"windowOk"`
}

// bindingsEdge serves GET /registry/bindings. It implements
// admit.FastHandler: an admitted request whose answer is already
// preserialized is written straight from the cache — no context derive,
// no tracing, no marshalling, zero allocations — while misses fall
// through to ServeHTTP, which renders, stores, and answers.
type bindingsEdge struct {
	reg *Registry
}

// FastServe writes a cached response if one validates against the
// current write epoch, snapshot generation, brownout tier, and expiry.
// It must not block and must not allocate on a hit.
//
//repolint:hotpath the warm discovery round-trip's 0-alloc serving path
func (e *bindingsEdge) FastServe(w http.ResponseWriter, req *http.Request) bool {
	r := e.reg
	if r.RespCache == nil || r.Tracer.Sample() != 0 {
		return false
	}
	name, ok := serviceParam(req.URL.RawQuery)
	if !ok {
		return false
	}
	now := r.Clock.Now()
	gen, taken := r.Balancer.SnapshotMeta(now)
	ent := r.RespCache.Lookup(respcache.SpaceName, name, gen, r.edgeTier(), now)
	if ent == nil {
		return false
	}
	h := w.Header()
	h["Content-Type"] = jsonCT
	w.Write(ent.JSON)
	age := snapshotAge(now, taken)
	r.discovery.observe(ent.Decision, ent.FirstHost, age, r.Clock.Now().Sub(now).Seconds())
	if fw := flight.From(w); fw != nil {
		fw.Rec.CacheHit = true
		noteDecision(&fw.Rec, &ent.Decision)
		fw.Rec.SnapshotAge = age
		fw.Rec.Host = ent.FirstHost
	}
	return true
}

// snapshotAge converts a snapshot publish instant into the decision's
// staleness, clamping at zero (a just-republished table reads as fresh).
//
//repolint:hotpath runs on every discovery request
func snapshotAge(now, taken time.Time) time.Duration {
	if taken.IsZero() {
		return 0
	}
	if d := now.Sub(taken); d > 0 {
		return d
	}
	return 0
}

// ServeHTTP is the miss path: run the balancer, render once into the
// cache, answer from the rendered bytes.
func (e *bindingsEdge) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r := e.reg
	// Without an admission controller nothing calls FastServe for us.
	if r.Admission == nil && e.FastServe(w, req) {
		return
	}
	name := req.URL.Query().Get("service")
	if name == "" {
		http.Error(w, "missing service parameter", http.StatusBadRequest)
		return
	}
	start := r.Clock.Now()
	cacheable := r.RespCache != nil && r.Tracer.Sample() == 0
	// Read the validity tuple before the decision is computed: a
	// write or tier change landing mid-flight leaves the stored
	// entry permanently invalid rather than ever stale.
	gen, taken := r.Balancer.SnapshotMeta(start)
	age := snapshotAge(start, taken)
	var epoch uint64
	var tier uint32
	if cacheable {
		epoch = r.RespCache.Epoch()
		tier = r.edgeTier()
	}
	tr := r.Tracer.Start()
	if tr != nil {
		w.Header().Set("X-Registry-Trace", tr.ID)
	}
	uris, dec, err := r.QM.GetServiceBindingsByNameCtx(obs.WithTrace(req.Context(), tr), name)
	r.Tracer.Finish(tr)
	if err != nil {
		r.discovery.errors.Inc()
		status := http.StatusNotFound
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	host := chosenHost(uris, &dec)
	r.discovery.observe(dec, host, age, r.Clock.Now().Sub(start).Seconds())
	if fw := flight.From(w); fw != nil {
		noteDecision(&fw.Rec, &dec)
		fw.Rec.SnapshotAge = age
		fw.Rec.Host = host
		if tr != nil {
			fw.Rec.Trace = tr.ID
		}
	}
	if cacheable && tr == nil {
		if ent := r.renderBindingsEntry(uris, dec, gen, tier, start); ent != nil {
			r.RespCache.StoreAt(respcache.SpaceName, name, ent, epoch)
			h := w.Header()
			h["Content-Type"] = jsonCT
			w.Write(ent.JSON)
			return
		}
	}
	writeJSON(w, bindingsBody{
		URIs:       uris,
		Filtered:   dec.Filtered,
		Eligible:   dec.Eligible(),
		Unknown:    dec.Unknown(),
		Ineligible: dec.Ineligible(),
		WindowOK:   dec.TimeWindowOK,
	})
}

// serviceParam extracts the service query parameter without allocating:
// a plain substring of RawQuery is returned when the value needs no
// decoding. Percent escapes, '+', and semicolon-separated pairs (which
// url.ParseQuery rejects outright) bail to the slow path so the fast
// path can never disagree with req.URL.Query().
//
//repolint:hotpath runs on every discovery request before the cache lookup
func serviceParam(raw string) (string, bool) {
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if strings.IndexByte(pair, ';') >= 0 ||
			strings.IndexByte(pair, '%') >= 0 ||
			strings.IndexByte(pair, '+') >= 0 {
			return "", false
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if key == "service" {
			if val == "" {
				return "", false
			}
			return val, true
		}
	}
	return "", false
}

// edgeTier reads the brownout tier for response-cache keying; a registry
// without admission control is permanently at tier 0.
//
//repolint:hotpath runs on every discovery request before the cache lookup
func (r *Registry) edgeTier() uint32 {
	if r.Admission == nil {
		return 0
	}
	return uint32(r.Admission.Tier())
}

// renderBindingsEntry preserializes both encodings of one discovery
// answer. The JSON bytes go through the same encoder configuration as
// writeJSON, and the SOAP envelope through soap.Marshal, so cached and
// fresh responses are byte-identical. Returns nil when either encoding
// fails (the caller then answers uncached).
func (r *Registry) renderBindingsEntry(uris []string, dec core.Decision, gen uint64, tier uint32, now time.Time) *respcache.Entry {
	body := bindingsBody{
		URIs:       uris,
		Filtered:   dec.Filtered,
		Eligible:   dec.Eligible(),
		Unknown:    dec.Unknown(),
		Ineligible: dec.Ineligible(),
		WindowOK:   dec.TimeWindowOK,
	}
	buf := respcache.GetBuffer()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(body); err != nil {
		respcache.PutBuffer(buf)
		return nil
	}
	jsonBytes := append([]byte(nil), buf.Bytes()...)
	respcache.PutBuffer(buf)
	env, err := soap.Marshal(&GetBindingsResponse{
		URIs:       uris,
		Filtered:   dec.Filtered,
		Eligible:   dec.Eligible(),
		Unknown:    dec.Unknown(),
		Ineligible: dec.Ineligible(),
		WindowOK:   dec.TimeWindowOK,
	})
	if err != nil {
		return nil
	}
	return &respcache.Entry{
		Gen:       gen,
		Tier:      tier,
		Expires:   r.respExpiry(dec, now),
		JSON:      jsonBytes,
		SOAP:      env,
		Decision:  dec,
		FirstHost: chosenHost(uris, &dec),
	}
}

// respExpiry computes the first instant the cached decision could
// change for time-based reasons: the constraint window's next boundary,
// or the earliest freshness horizon of a row that is currently fresh
// (past it the row's verdict flips to unknown without any write or
// snapshot movement). Zero means the answer is time-independent.
func (r *Registry) respExpiry(dec core.Decision, now time.Time) time.Time {
	var exp time.Time
	if dec.Constraint != nil {
		exp = dec.Constraint.NextWindowChange(now)
	}
	if f := r.Balancer.Freshness; f > 0 {
		for i := range dec.Bindings {
			b := &dec.Bindings[i]
			if !b.HasRow || b.Updated.IsZero() {
				continue
			}
			if b.Verdict != core.VerdictEligible && b.Verdict != core.VerdictIneligible {
				continue
			}
			horizon := b.Updated.Add(f)
			if exp.IsZero() || horizon.Before(exp) {
				exp = horizon
			}
		}
	}
	return exp
}

func (r *Registry) handleQuery(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	syntax := req.URL.Query().Get("syntax")
	start, _ := strconv.Atoi(req.URL.Query().Get("start"))
	max, _ := strconv.Atoi(req.URL.Query().Get("max"))
	resp, err := r.QM.SubmitAdhocQuery(qm.AdhocQueryRequest{
		Syntax: syntax, Query: q, StartIndex: start, MaxResults: max,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func (r *Registry) handleNodeState(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, r.Store.NodeState().Rows())
}

// handleHealth reports the collector's per-host health and breaker state
// (the machine-readable twin of the web UI's collector-health table) plus
// a per-component rollup: collector, WAL, admission, edge cache, and
// balance each report ok/degraded/disabled, and Status carries the worst
// of them.
func (r *Registry) handleHealth(w http.ResponseWriter, req *http.Request) {
	stats := r.Collector.FaultStats()
	hosts := r.Collector.HealthSnapshot()
	comps := r.componentHealth(stats, hosts)
	status := "ok"
	for _, c := range comps {
		if c.Status == "degraded" {
			status = "degraded"
			break
		}
	}
	writeJSON(w, struct {
		Status     string
		Stats      nodestate.Stats
		Hosts      []nodestate.HostHealthReport
		Components map[string]componentHealth
	}{Status: status, Stats: stats, Hosts: hosts, Components: comps})
}

// HealthStatus computes the same rollup verdict /registry/health reports
// — "ok" or "degraded" — for in-process callers (federated discovery's
// per-registry health column).
func (r *Registry) HealthStatus() string {
	for _, c := range r.componentHealth(r.Collector.FaultStats(), r.Collector.HealthSnapshot()) {
		if c.Status == "degraded" {
			return "degraded"
		}
	}
	return "ok"
}

// handleContent serves repository artifacts by ExtrinsicObject id — the
// "any metadata or artifact ... addressable via an HTTP URL" row of
// Table 1.1.
func (r *Registry) handleContent(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	eo, content, err := r.GetRepositoryItem(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	ct := eo.MimeType
	if ct == "" {
		ct = "application/octet-stream"
	}
	w.Header().Set("Content-Type", ct)
	w.Write(content)
}
