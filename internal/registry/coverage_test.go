package registry

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cataloger"
	"repro/internal/nodestatus"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/soap"
)

// TestSOAPFindObjects exercises the FindObjectsRequest protocol across
// every wireable kind.
func TestSOAPFindObjects(t *testing.T) {
	reg := newRegistry(t)
	svc := rim.NewService("FindMe", "")
	svc.AddBinding("http://h.example/x")
	pkg := rim.NewRegistryPackage("FindPkg")
	link := rim.NewExternalLink("FindLink", "http://spec.example/")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc, pkg, link); err != nil {
		t.Fatal(err)
	}
	for kind, want := range map[string]int{
		"Service":              1,
		"RegistryPackage":      1,
		"ExternalLink":         1,
		"User":                 1, // registryOperator
		"ClassificationScheme": 5,
		"ClassificationNode":   30, // seeded taxonomies (lower bound checked below)
		"AdhocQuery":           0,
		"Association":          0,
		"Organization":         0,
	} {
		resp, err := reg.doFind(&FindObjectsRequest{Kind: kind, NamePattern: "%"})
		if err != nil {
			t.Fatalf("doFind(%s): %v", kind, err)
		}
		got := len(resp.(*FindObjectsResponse).Objects)
		if kind == "ClassificationNode" {
			if got < want {
				t.Errorf("doFind(%s) = %d, want >= %d", kind, got, want)
			}
			continue
		}
		if got != want {
			t.Errorf("doFind(%s) = %d, want %d", kind, got, want)
		}
	}
	_, err := reg.doFind(&FindObjectsRequest{Kind: "Martian"})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	var fault *soap.Fault
	if !errors.As(err, &fault) || fault.Code != "Client" {
		t.Fatalf("want client fault, got %v", err)
	}
}

// TestRunCollectorLoop drives the registry's collection loop through one
// periodic tick against a live NodeStatus deployment.
func TestRunCollectorLoop(t *testing.T) {
	clk := simclock.NewManual(t0)
	reg, err := New(Config{Clock: clk, CollectionPeriod: 25 * time.Second,
		Invoker: staticInvoker{}})
	if err != nil {
		t.Fatal(err)
	}
	ns := rim.NewService(nodestatus.ServiceName, "")
	ns.AddBinding("http://h1.sdsu.edu:8080/NodeStatus/NodeStatusService")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), ns); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { reg.RunCollector(ctx); close(done) }()

	waitRows := func(n int) {
		for i := 0; i < 5000; i++ {
			if s, _ := reg.Collector.Stats(); s >= n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("collector stuck before %d sweeps", n)
	}
	waitRows(1)
	for i := 0; i < 5000 && clk.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(25 * time.Second)
	waitRows(2)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunCollector did not stop")
	}
	if _, ok := reg.Store.NodeState().Get("h1.sdsu.edu"); !ok {
		t.Fatal("collector loop produced no row")
	}
}

// staticInvoker answers every NodeStatus invocation with a fixed sample.
type staticInvoker struct{}

func (staticInvoker) Invoke(uri string) (nodestatus.Response, error) {
	return nodestatus.Response{Host: rim.HostOfURI(uri), Load: 0.5, MemoryB: 1 << 30, SwapB: 1 << 30}, nil
}

// TestRegisterCustomCataloger verifies the extension hook reaches the
// repository path.
func TestRegisterCustomCataloger(t *testing.T) {
	reg := newRegistry(t)
	reg.RegisterCataloger(markerCataloger{})
	eo := rim.NewExtrinsicObject("thing", "application/x-marker")
	if err := reg.SubmitRepositoryItem(reg.AdminContext(), eo, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, _, err := reg.GetRepositoryItem(eo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.SlotValue("marker"); !ok || v != "seen" {
		t.Fatalf("marker slot = %q, %v", v, ok)
	}
}

type markerCataloger struct{}

func (markerCataloger) Name() string { return "marker" }
func (markerCataloger) Accepts(mimeType string, _ []byte) bool {
	return mimeType == "application/x-marker"
}
func (markerCataloger) Catalog(eo *rim.ExtrinsicObject, _ []byte) error {
	eo.SetSlot("marker", "seen")
	return nil
}

var _ cataloger.Cataloger = markerCataloger{}
