package registry

// Protocol message types for the SOAP binding — the ebRS request protocols
// of thesis §2.2.3 (SubmitObjectsRequest, UpdateObjectsRequest,
// ApproveObjectsRequest, DeprecateObjectsRequest,
// UndeprecateObjectsRequest, RemoveObjectsRequest, AdhocQueryRequest,
// RelocateObjectsRequest) plus the authentication handshake and the
// load-balanced binding discovery call.

// SubmitObjectsRequest publishes new objects.
type SubmitObjectsRequest struct {
	XMLName struct{}     `xml:"SubmitObjectsRequest"`
	Session string       `xml:"session,attr,omitempty"`
	Objects []WireObject `xml:"RegistryObjectList>RegistryObject"`
}

// UpdateObjectsRequest replaces previously submitted objects.
type UpdateObjectsRequest struct {
	XMLName struct{}     `xml:"UpdateObjectsRequest"`
	Session string       `xml:"session,attr,omitempty"`
	Objects []WireObject `xml:"RegistryObjectList>RegistryObject"`
}

// ObjectRefRequest drives status transitions, removal and relocation.
type ObjectRefRequest struct {
	Session string   `xml:"session,attr,omitempty"`
	IDs     []string `xml:"ObjectRef"`
}

// ApproveObjectsRequest approves objects.
type ApproveObjectsRequest struct {
	XMLName struct{} `xml:"ApproveObjectsRequest"`
	ObjectRefRequest
}

// DeprecateObjectsRequest deprecates objects.
type DeprecateObjectsRequest struct {
	XMLName struct{} `xml:"DeprecateObjectsRequest"`
	ObjectRefRequest
}

// UndeprecateObjectsRequest reverses deprecation.
type UndeprecateObjectsRequest struct {
	XMLName struct{} `xml:"UndeprecateObjectsRequest"`
	ObjectRefRequest
}

// RemoveObjectsRequest deletes objects.
type RemoveObjectsRequest struct {
	XMLName struct{} `xml:"RemoveObjectsRequest"`
	ObjectRefRequest
}

// RelocateObjectsRequest retargets objects' home registry.
type RelocateObjectsRequest struct {
	XMLName struct{} `xml:"RelocateObjectsRequest"`
	Home    string   `xml:"home,attr"`
	ObjectRefRequest
}

// RegistryResponse acknowledges a life-cycle request, echoing the affected
// object ids (the thesis's AccessRegistry API surfaces these as "key was
// urn:uuid:...").
type RegistryResponse struct {
	XMLName struct{} `xml:"RegistryResponse"`
	Status  string   `xml:"status,attr"`
	IDs     []string `xml:"ObjectRef,omitempty"`
}

// GetObjectRequest retrieves one object by id.
type GetObjectRequest struct {
	XMLName struct{} `xml:"GetObjectRequest"`
	ID      string   `xml:"id,attr"`
}

// GetObjectResponse carries the object.
type GetObjectResponse struct {
	XMLName struct{}   `xml:"GetObjectResponse"`
	Object  WireObject `xml:"RegistryObject"`
}

// WireParam is one named query parameter value.
type WireParam struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
	// Type is "string" (default) or "number".
	Type string `xml:"type,attr,omitempty"`
}

// AdhocQueryWireRequest runs an ad-hoc query.
type AdhocQueryWireRequest struct {
	XMLName    struct{}    `xml:"AdhocQueryRequest"`
	Syntax     string      `xml:"querySyntax,attr,omitempty"`
	StartIndex int         `xml:"startIndex,attr,omitempty"`
	MaxResults int         `xml:"maxResults,attr,omitempty"`
	Query      string      `xml:"QueryExpression"`
	Params     []WireParam `xml:"Param,omitempty"`
	// StoredQueryName invokes a stored query instead of QueryExpression.
	StoredQueryName string `xml:"storedQuery,attr,omitempty"`
}

// WireCell is one result cell; Null distinguishes SQL NULL from "".
type WireCell struct {
	Null  bool   `xml:"null,attr,omitempty"`
	Value string `xml:",chardata"`
}

// WireRow is one result row.
type WireRow struct {
	Cells []WireCell `xml:"Cell"`
}

// AdhocQueryWireResponse returns the matched window plus iterative
// parameters.
type AdhocQueryWireResponse struct {
	XMLName           struct{}  `xml:"AdhocQueryResponse"`
	StartIndex        int       `xml:"startIndex,attr"`
	TotalResultsCount int       `xml:"totalResultCount,attr"`
	Columns           []string  `xml:"Column"`
	Rows              []WireRow `xml:"Row"`
}

// FindObjectsRequest is the browse/drill-down call behind the Web UI
// search (name LIKE pattern within one object class).
type FindObjectsRequest struct {
	XMLName     struct{} `xml:"FindObjectsRequest"`
	Kind        string   `xml:"kind,attr"`
	NamePattern string   `xml:"namePattern,attr"`
}

// FindObjectsResponse lists matches.
type FindObjectsResponse struct {
	XMLName struct{}     `xml:"FindObjectsResponse"`
	Objects []WireObject `xml:"RegistryObjectList>RegistryObject"`
}

// GetBindingsRequest performs the constrained discovery of Fig. 3.4:
// resolve a service (by id or name) to its arranged access URIs.
type GetBindingsRequest struct {
	XMLName     struct{} `xml:"GetBindingsRequest"`
	ServiceID   string   `xml:"serviceId,attr,omitempty"`
	ServiceName string   `xml:"serviceName,attr,omitempty"`
}

// GetBindingsResponse returns the arranged URIs and a decision summary.
type GetBindingsResponse struct {
	XMLName    struct{} `xml:"GetBindingsResponse"`
	URIs       []string `xml:"AccessURI"`
	Filtered   bool     `xml:"filtered,attr"`
	Eligible   int      `xml:"eligible,attr"`
	Unknown    int      `xml:"unknown,attr"`
	Ineligible int      `xml:"ineligible,attr"`
	WindowOK   bool     `xml:"timeWindowOk,attr"`
	// Trace is the sampled obs trace id for this discovery (empty when
	// sampling skipped the request); the REST binding carries the same id
	// in the X-Registry-Trace response header instead.
	Trace string `xml:"trace,attr,omitempty"`
}

// RegisterRequest runs the user registration wizard over the wire.
type RegisterRequest struct {
	XMLName   struct{} `xml:"RegisterRequest"`
	Alias     string   `xml:"alias,attr"`
	Password  string   `xml:"password,attr"`
	FirstName string   `xml:"firstName,attr,omitempty"`
	LastName  string   `xml:"lastName,attr,omitempty"`
}

// RegisterResponse returns the generated credentials (PEM, base64-safe in
// XML chardata) and the new user id.
type RegisterResponse struct {
	XMLName struct{} `xml:"RegisterResponse"`
	UserID  string   `xml:"userId,attr"`
	CertPEM string   `xml:"Certificate"`
	KeyPEM  string   `xml:"PrivateKey"`
}

// ChallengeRequest asks for a login nonce.
type ChallengeRequest struct {
	XMLName struct{} `xml:"ChallengeRequest"`
	Alias   string   `xml:"alias,attr"`
}

// ChallengeResponse carries the nonce (base64).
type ChallengeResponse struct {
	XMLName struct{} `xml:"ChallengeResponse"`
	Nonce   string   `xml:"Nonce"`
}

// LoginRequest presents the signed nonce.
type LoginRequest struct {
	XMLName   struct{} `xml:"LoginRequest"`
	Alias     string   `xml:"alias,attr"`
	Signature string   `xml:"Signature"` // base64
}

// LoginResponse opens a session.
type LoginResponse struct {
	XMLName struct{} `xml:"LoginResponse"`
	Token   string   `xml:"token,attr"`
	UserID  string   `xml:"userId,attr"`
}
