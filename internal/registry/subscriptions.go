package registry

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/rim"
	"repro/internal/soap"
)

// Subscription support (thesis §1.3.2.5, Fig. 1.20): clients register a
// selector (object type, name pattern, event kinds) and a delivery action
// — a Web Service endpoint that receives SOAP RegistryNotification
// messages, or an e-mail address whose messages land in the registry's
// outbox (the simulation analog of SMTP delivery).

// SubscribeRequest creates a subscription over the wire.
type SubscribeRequest struct {
	XMLName     struct{} `xml:"SubscribeRequest"`
	Session     string   `xml:"session,attr"`
	ObjectKind  string   `xml:"objectKind,attr,omitempty"`  // e.g. "Service"
	NamePattern string   `xml:"namePattern,attr,omitempty"` // SQL LIKE
	EventTypes  []string `xml:"EventType,omitempty"`
	// Exactly one delivery target:
	NotifyURI string `xml:"notifyURI,attr,omitempty"`
	Email     string `xml:"email,attr,omitempty"`
}

// SubscribeResponse returns the subscription id.
type SubscribeResponse struct {
	XMLName        struct{} `xml:"SubscribeResponse"`
	SubscriptionID string   `xml:"subscriptionId,attr"`
}

// UnsubscribeRequest cancels a subscription.
type UnsubscribeRequest struct {
	XMLName        struct{} `xml:"UnsubscribeRequest"`
	Session        string   `xml:"session,attr"`
	SubscriptionID string   `xml:"subscriptionId,attr"`
}

// Subscribe registers a subscription for the authenticated user and
// returns its id. Exactly one of notifyURI or email must be given.
func (r *Registry) Subscribe(userID string, sel events.Selector, notifyURI, email string) (string, error) {
	if (notifyURI == "") == (email == "") {
		return "", fmt.Errorf("registry: subscription needs exactly one of notifyURI or email")
	}
	var action events.Deliverer
	if notifyURI != "" {
		action = &events.ServiceDeliverer{EndpointURI: notifyURI}
	} else {
		d := &events.EmailDeliverer{Address: email}
		r.outboxMu.Lock()
		r.outboxes = append(r.outboxes, d)
		r.outboxMu.Unlock()
		action = d
	}
	return r.Bus.Subscribe(userID, sel, action), nil
}

// Unsubscribe cancels a subscription, reporting whether it existed.
func (r *Registry) Unsubscribe(id string) bool { return r.Bus.Unsubscribe(id) }

// EmailOutbox returns every email-notification line delivered so far —
// observable mail for tests and the admin UI.
func (r *Registry) EmailOutbox() []string {
	r.outboxMu.Lock()
	defer r.outboxMu.Unlock()
	var out []string
	for _, d := range r.outboxes {
		out = append(out, d.Outbox()...)
	}
	return out
}

func (r *Registry) doSubscribe(req *SubscribeRequest) (interface{}, error) {
	ctx, err := r.sessionOrFault(req.Session)
	if err != nil {
		return nil, err
	}
	sel := events.Selector{NamePattern: req.NamePattern}
	if req.ObjectKind != "" {
		t, err := kindToType(req.ObjectKind)
		if err != nil {
			return nil, soap.ClientFault("%v", err)
		}
		sel.ObjectType = t
	}
	for _, e := range req.EventTypes {
		sel.EventTypes = append(sel.EventTypes, rim.EventType(e))
	}
	id, err := r.Subscribe(ctx.UserID, sel, req.NotifyURI, req.Email)
	if err != nil {
		return nil, soap.ClientFault("%v", err)
	}
	return &SubscribeResponse{SubscriptionID: id}, nil
}

func (r *Registry) doUnsubscribe(req *UnsubscribeRequest) (interface{}, error) {
	if _, err := r.sessionOrFault(req.Session); err != nil {
		return nil, err
	}
	if !r.Unsubscribe(req.SubscriptionID) {
		return nil, soap.ClientFault("unknown subscription %s", req.SubscriptionID)
	}
	return &RegistryResponse{Status: "Success", IDs: []string{req.SubscriptionID}}, nil
}
