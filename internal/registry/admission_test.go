package registry

// Shedding × degraded-mode composition: the brownout ladder's overrides
// (stale snapshots, forced static fallback) must compose with the
// balancer's own degradation machinery (quarantine, DegradedStatic)
// without double-degrading, and the whole admission edge must hold up
// under real concurrent HTTP load with the collector writing rows
// underneath it (run with -race; see `make overloadcheck`).

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/nodestatus"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

// admitTestConfig mirrors internal/admit's test config: tight limits and
// sub-second brownout thresholds so a few simulated seconds of overload
// walk the whole ladder.
func admitTestConfig() admit.Config {
	return admit.Config{
		Discovery:         admit.ClassLimits{MaxInFlight: 2, MaxQueue: 2, QueueTimeout: 100 * time.Millisecond, Deadline: 250 * time.Millisecond},
		LCM:               admit.ClassLimits{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 100 * time.Millisecond, Deadline: time.Second},
		Tick:              100 * time.Millisecond,
		MinAccept:         0.05,
		RetryAfter:        time.Second,
		BrownoutEscalate:  300 * time.Millisecond,
		BrownoutCalm:      500 * time.Millisecond,
		BrownoutStaleness: time.Minute,
	}
}

func newAdmitRegistry(t *testing.T, adm admit.Config, degraded core.DegradedMode) *Registry {
	t.Helper()
	r, err := New(Config{
		Clock:       simclock.NewManual(t0),
		Policy:      core.PolicyFilter,
		Degraded:    degraded,
		TraceSample: 2,
		Admission:   &adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// seedWorker publishes a constrained Worker service bound to hosts.
func seedWorker(t *testing.T, r *Registry, hosts ...string) {
	t.Helper()
	svc := rim.NewService("Worker",
		`worker <constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>`)
	for _, h := range hosts {
		svc.AddBinding("http://" + h + ":8080/Worker/workerService")
	}
	if err := r.LCM.SubmitObjects(r.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
}

// driveDiscoveryOverload pins every discovery slot busy for d of simulated
// time while arrivals keep pounding the saturated class (the admit
// package's overload driver, replayed against the registry's wired
// controller so the OnTierChange callbacks actually fire).
func driveDiscoveryOverload(r *Registry, d time.Duration) {
	c := r.Admission
	clk := r.Clock.(*simclock.Manual)
	now := clk.Now()
	max := c.Limits(admit.ClassDiscovery).MaxInFlight
	for i := 0; i < max; i++ {
		c.TryAdmit(admit.ClassDiscovery, now)
	}
	step := 50 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		now = clk.Now()
		if out, tk := c.TryAdmit(admit.ClassDiscovery, now); out == admit.Queued {
			c.CancelQueued(tk, now, true)
		}
		if p := c.Release(admit.ClassDiscovery, now.Add(-2*time.Second), now); p == nil {
			c.TryAdmit(admit.ClassDiscovery, now)
		}
		clk.Advance(step)
	}
	now = clk.Now()
	for i := 0; i < max; i++ {
		c.Release(admit.ClassDiscovery, now, now)
	}
}

// calmDiscovery runs fast, sparse completions until the ladder has had
// ample calm time to walk back to nominal.
func calmDiscovery(r *Registry, rounds int) {
	c := r.Admission
	clk := r.Clock.(*simclock.Manual)
	for i := 0; i < rounds; i++ {
		now := clk.Now()
		if out, _ := c.TryAdmit(admit.ClassDiscovery, now); out == admit.Admitted {
			c.Release(admit.ClassDiscovery, now, now.Add(time.Millisecond))
		}
		clk.Advance(200 * time.Millisecond)
	}
}

// TestBrownoutTiersComposeWithQuarantine drives the wired controller up
// the ladder and checks each override lands where the registry promised:
// tracing off at TierNoTrace, extra snapshot staleness at TierStale — and
// that the stale tier does NOT resurrect quarantined hosts: breaker
// verdicts recorded in the (stale) snapshot keep excluding them.
func TestBrownoutTiersComposeWithQuarantine(t *testing.T) {
	r := newAdmitRegistry(t, admitTestConfig(), core.DegradedEmpty)
	seedWorker(t, r, "exergy.sdsu.edu", "thermo.sdsu.edu")
	now := r.Clock.Now()
	r.Store.NodeState().Upsert(store.NodeState{
		Host: "exergy.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
		Updated: now, Health: store.HealthQuarantined,
	})
	r.Store.NodeState().Upsert(store.NodeState{
		Host: "thermo.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
		Updated: now,
	})

	if got := r.Tracer.Sample(); got != 2 {
		t.Fatalf("nominal trace sample = %d, want 2", got)
	}

	driveDiscoveryOverload(r, 5*time.Second)
	if got := r.Admission.Tier(); got < admit.TierStale {
		t.Fatalf("tier after sustained overload = %v, want >= TierStale", got)
	}
	if got := r.Tracer.Sample(); got != 0 {
		t.Fatalf("trace sample at %v = %d, want 0 (TierNoTrace)", r.Admission.Tier(), got)
	}
	if got := r.Balancer.Brownout.ExtraStaleness(); got != time.Minute {
		t.Fatalf("extra staleness at %v = %v, want 1m", r.Admission.Tier(), got)
	}

	// Discovery during the brownout: the healthy host is served normally,
	// the quarantined one stays excluded — stale service is degraded
	// service, not un-degraded service.
	uris, dec, err := r.QM.GetServiceBindingsByName("Worker")
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 1 || !strings.Contains(uris[0], "thermo") {
		t.Fatalf("uris under brownout = %v, want thermo only", uris)
	}
	if dec.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1 (decision %+v)", dec.Quarantined(), dec)
	}
	if dec.Degraded {
		t.Fatalf("decision degraded with a healthy host available: %+v", dec)
	}

	// Calm walks the ladder back down and restores every override.
	calmDiscovery(r, 200)
	if got := r.Admission.Tier(); got != admit.TierNominal {
		t.Fatalf("tier after calm = %v, want TierNominal", got)
	}
	if got := r.Tracer.Sample(); got != 2 {
		t.Fatalf("trace sample after recovery = %d, want 2", got)
	}
	if got := r.Balancer.Brownout.ExtraStaleness(); got != 0 {
		t.Fatalf("extra staleness after recovery = %v, want 0", got)
	}
}

// TestDegradedStaticAndTierStaticIdempotent quarantines the whole cluster
// so discovery finds nothing, then checks the two static-fallback sources
// — the configured DegradedStatic policy and the brownout ladder's
// TierStatic — produce the same single degradation whether one or both
// are active: the stored order, once, flagged Degraded.
func TestDegradedStaticAndTierStaticIdempotent(t *testing.T) {
	hosts := []string{"exergy.sdsu.edu", "thermo.sdsu.edu"}
	quarantineAll := func(r *Registry) {
		now := r.Clock.Now()
		for _, h := range hosts {
			r.Store.NodeState().Upsert(store.NodeState{
				Host: h, Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
				Updated: now, Health: store.HealthQuarantined,
			})
		}
	}
	wantStored := []string{
		"http://exergy.sdsu.edu:8080/Worker/workerService",
		"http://thermo.sdsu.edu:8080/Worker/workerService",
	}
	checkStored := func(t *testing.T, r *Registry, label string) {
		t.Helper()
		uris, dec, err := r.QM.GetServiceBindingsByName("Worker")
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(uris) != len(wantStored) {
			t.Fatalf("%s: uris = %v, want the stored order exactly once", label, uris)
		}
		for i, u := range wantStored {
			if uris[i] != u {
				t.Fatalf("%s: uris = %v, want stored order %v", label, uris, wantStored)
			}
		}
		if !dec.Degraded {
			t.Fatalf("%s: decision not marked Degraded: %+v", label, dec)
		}
		if dec.Quarantined() != len(hosts) {
			t.Fatalf("%s: quarantined = %d, want %d", label, dec.Quarantined(), len(hosts))
		}
	}

	// DegradedStatic alone (nominal tier).
	r := newAdmitRegistry(t, admitTestConfig(), core.DegradedStatic)
	seedWorker(t, r, hosts...)
	quarantineAll(r)
	checkStored(t, r, "DegradedStatic@nominal")

	// DegradedStatic + TierStatic: both active, still one degradation.
	driveDiscoveryOverload(r, 5*time.Second)
	if got := r.Admission.Tier(); got != admit.TierStatic {
		t.Fatalf("tier after sustained overload = %v, want TierStatic", got)
	}
	if !r.Balancer.Brownout.ForceStatic() {
		t.Fatal("TierStatic did not force static fallback on the balancer")
	}
	checkStored(t, r, "DegradedStatic@TierStatic")

	// TierStatic alone: the ladder forces the stored order even when the
	// configured policy would serve an empty answer.
	r2 := newAdmitRegistry(t, admitTestConfig(), core.DegradedEmpty)
	seedWorker(t, r2, hosts...)
	quarantineAll(r2)
	if uris, _, err := r2.QM.GetServiceBindingsByName("Worker"); err != nil || len(uris) != 0 {
		t.Fatalf("DegradedEmpty@nominal: uris = %v (err %v), want empty", uris, err)
	}
	driveDiscoveryOverload(r2, 5*time.Second)
	checkStored(t, r2, "DegradedEmpty@TierStatic")

	// Recovery: TierNominal hands the decision back to the configured
	// policy — empty again.
	calmDiscovery(r2, 200)
	if got := r2.Admission.Tier(); got != admit.TierNominal {
		t.Fatalf("tier after calm = %v, want TierNominal", got)
	}
	if uris, _, err := r2.QM.GetServiceBindingsByName("Worker"); err != nil || len(uris) != 0 {
		t.Fatalf("DegradedEmpty@recovered: uris = %v (err %v), want empty", uris, err)
	}
}

// stubInvoker answers NodeStatus probes instantly with a fixed healthy
// sample, so the live collector keeps rewriting rows while the HTTP edge
// is under fire.
type stubInvoker struct{ clock simclock.Clock }

func (s stubInvoker) Invoke(accessURI string) (nodestatus.Response, error) {
	return nodestatus.Response{
		Host: rim.HostOfURI(accessURI), Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
		Timestamp: s.clock.Now().UTC().Format(time.RFC3339Nano),
	}, nil
}

// TestOverloadHTTPWithLiveCollector floods a tiny admission edge with
// concurrent discovery requests over real HTTP while the collector
// rewrites NodeState rows underneath it and the clock ticks sweeps along.
// Under -race this is the whole-edge interleaving check; functionally it
// asserts the contract: some requests are served, the overflow is shed
// with 503 + Retry-After, and the always-admit operator surface keeps
// answering throughout.
func TestOverloadHTTPWithLiveCollector(t *testing.T) {
	clk := simclock.NewManual(t0)
	adm := admitTestConfig()
	// Wide deadlines/timeouts: the clock only advances ~6 simulated
	// seconds below, so budgets never expire mid-request and the test
	// exercises pure capacity shedding, not timeouts.
	adm.Discovery = admit.ClassLimits{MaxInFlight: 2, MaxQueue: 2, QueueTimeout: 30 * time.Second, Deadline: 30 * time.Second}
	r, err := New(Config{
		Clock:            clk,
		Policy:           core.PolicyFilter,
		CollectionPeriod: 50 * time.Millisecond,
		Invoker:          stubInvoker{clock: clk},
		Admission:        &adm,
	})
	if err != nil {
		t.Fatal(err)
	}

	// NodeStatus bindings give the collector real targets; the Worker
	// service gives discovery something to decide about.
	ns := rim.NewService(nodestatus.ServiceName, "status probes")
	for _, h := range []string{"exergy.sdsu.edu", "thermo.sdsu.edu"} {
		ns.AddBinding("http://" + h + ":8080/NodeStatus/NodeStatusService")
	}
	if err := r.LCM.SubmitObjects(r.AdminContext(), ns); err != nil {
		t.Fatal(err)
	}
	seedWorker(t, r, "exergy.sdsu.edu", "thermo.sdsu.edu")

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	client := srv.Client()

	ctx, cancel := context.WithCancel(context.Background())
	var bg sync.WaitGroup
	bg.Add(2)
	go func() { defer bg.Done(); r.RunCollector(ctx) }()
	// Tick simulated time so collector sweeps keep firing during the
	// burst; 100 × 60ms stays far under every deadline.
	go func() {
		defer bg.Done()
		for i := 0; i < 100; i++ {
			if ctx.Err() != nil {
				return
			}
			clk.Advance(60 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}()

	// Pin both in-flight slots so the burst actually contends: the first
	// two HTTP arrivals queue, everything else must shed. The handlers
	// themselves answer in microseconds, far too fast to fill a queue of
	// two from 40 clients without this.
	pinNow := clk.Now()
	for i := 0; i < adm.Discovery.MaxInFlight; i++ {
		if out, _ := r.Admission.TryAdmit(admit.ClassDiscovery, pinNow); out != admit.Admitted {
			t.Fatalf("pinning slot %d: outcome %v", i, out)
		}
	}

	const clients = 40
	statuses := make([]int, clients)
	retryAfter := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(srv.URL + "/registry/bindings?service=Worker")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}

	// Once the overflow has been shed and the queue is full, release the
	// pinned slots: the queued requests are promoted and served, and the
	// system drains.
	for i := 0; i < 5000; i++ {
		st := r.Admission.ClassStats(admit.ClassDiscovery)
		if st.Shed >= int64(clients-adm.Discovery.MaxQueue) && st.QueueDepth == adm.Discovery.MaxQueue {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < adm.Discovery.MaxInFlight; i++ {
		r.Admission.Release(admit.ClassDiscovery, pinNow, clk.Now())
	}
	wg.Wait()

	// The operator surface must answer while the edge sheds.
	mresp, err := client.Get(srv.URL + "/registry/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/registry/metrics = %d under overload, want 200", mresp.StatusCode)
	}
	if !strings.Contains(string(body), "registry_admission_shed_total") {
		t.Fatal("/registry/metrics missing registry_admission_shed_total")
	}

	cancel()
	bg.Wait()

	var served, shed int
	for i, s := range statuses {
		switch s {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("client %d: 503 without Retry-After", i)
			}
		case 0:
			// transport error already reported above
		default:
			t.Errorf("client %d: unexpected status %d", i, s)
		}
	}
	if served == 0 {
		t.Fatal("overload burst: nothing was served")
	}
	if shed == 0 {
		t.Fatal("overload burst: nothing was shed (limits not enforced?)")
	}
	st := r.Admission.ClassStats(admit.ClassDiscovery)
	if st.Shed == 0 {
		t.Fatalf("controller stats after burst = %+v, want Shed > 0", st)
	}
	t.Logf("burst: served=%d shed=%d stats=%+v", served, shed, st)
}
