package registry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/wal"
)

func newDurableRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	reg, err := New(Config{
		Clock:   simclock.NewManual(t0),
		DataDir: dir,
		Fsync:   wal.FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestRegistryCrashRecovery is the end-to-end acceptance check: a
// registry with -data-dir recovers every acknowledged write after the
// process dies without any shutdown path running, and bootstrap does not
// duplicate the built-in operator account across boots.
func TestRegistryCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	regA := newDurableRegistry(t, dir)
	svc := rim.NewService("CrashSurvivor", "submitted just before the crash")
	if err := regA.LCM.SubmitObjects(regA.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
	// kill -9: regA is abandoned with no Close, no checkpoint.

	regB := newDurableRegistry(t, dir)
	got, err := regB.Store.Get(svc.ID)
	if err != nil {
		t.Fatalf("acknowledged service lost across crash: %v", err)
	}
	if got.Base().Name.String() != "CrashSurvivor" {
		t.Fatalf("recovered service name = %q", got.Base().Name)
	}
	if admins := regB.Store.FindByName(rim.TypeUser, AdminAlias); len(admins) != 1 {
		t.Fatalf("%d operator accounts after recovery, want exactly 1", len(admins))
	}

	// And a third boot after a graceful close replays from the checkpoint.
	if err := regB.Durable.Close(); err != nil {
		t.Fatal(err)
	}
	regC := newDurableRegistry(t, dir)
	if _, err := regC.Store.Get(svc.ID); err != nil {
		t.Fatalf("service lost across graceful restart: %v", err)
	}
}

func scrapeMetrics(t *testing.T, srv *httptest.Server) *obs.Scrape {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/registry/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	scrape, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse strictly: %v", err)
	}
	return scrape
}

// TestDurabilityMetricsExposition verifies the wal_*/checkpoint_* families
// parse under the strict exposition parser and reflect WAL activity,
// including the degraded gauge flipping when durability fails.
func TestDurabilityMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	regA := newDurableRegistry(t, dir)
	for i := 0; i < 3; i++ {
		if err := regA.LCM.SubmitObjects(regA.AdminContext(), rim.NewService(fmt.Sprintf("svc-%d", i), "")); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon regA so the next boot has a WAL tail to replay.

	reg := newDurableRegistry(t, dir)
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	scrape := scrapeMetrics(t, srv)
	if v, ok := scrape.Value("registry_wal_replay_records_total", nil); !ok || v <= 0 {
		t.Fatalf("registry_wal_replay_records_total = %v, %v; want > 0 after a crash boot", v, ok)
	}
	if v, ok := scrape.Value("registry_wal_segments", nil); !ok || v < 1 {
		t.Fatalf("registry_wal_segments = %v, %v", v, ok)
	}
	if v, ok := scrape.Value("registry_checkpoints_total", nil); !ok || v < 1 {
		t.Fatalf("registry_checkpoints_total = %v, %v; want the boot checkpoint counted", v, ok)
	}
	if v, ok := scrape.Value("registry_wal_degraded", nil); !ok || v != 0 {
		t.Fatalf("registry_wal_degraded = %v, %v; want healthy 0", v, ok)
	}
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), rim.NewService("counted", "")); err != nil {
		t.Fatal(err)
	}
	after := scrapeMetrics(t, srv)
	if v, ok := after.Value("registry_wal_appends_total", nil); !ok || v < 1 {
		t.Fatalf("registry_wal_appends_total = %v, %v after a write", v, ok)
	}
	if v, ok := after.Value("registry_wal_fsyncs_total", nil); !ok || v < 1 {
		t.Fatalf("registry_wal_fsyncs_total = %v, %v under fsync=always", v, ok)
	}

	reg.Durable.ForceReadOnly(fmt.Errorf("simulated disk failure"))
	degraded := scrapeMetrics(t, srv)
	if v, ok := degraded.Value("registry_wal_degraded", nil); !ok || v != 1 {
		t.Fatalf("registry_wal_degraded = %v, %v after ForceReadOnly; want 1", v, ok)
	}
	// Discovery/read paths keep serving while writes are refused.
	resp, err := srv.Client().Get(srv.URL + "/registry/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status %d in degraded mode, want 200", resp.StatusCode)
	}
}
