// bundle.go is the one-shot diagnostic surface: the per-component health
// rollup behind /registry/health, and /registry/debug/bundle — a single
// JSON document carrying everything an operator needs to debug a
// misbehaving node (config view, metrics snapshot, recent flight records
// and traces, WAL position, brownout tier, optional goroutine dump)
// without a round of follow-up requests against a box that may be
// shedding.
package registry

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/flight"
	"repro/internal/nodestate"
	"repro/internal/obs"
	"repro/internal/store"
)

// componentHealth is one subsystem's verdict in the /registry/health
// rollup: Status is "ok", "degraded", or "disabled"; Note says why, and
// Values carries the numbers the verdict was derived from.
type componentHealth struct {
	Status string             `json:"status"`
	Note   string             `json:"note,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// balanceDegradedBelow is the fairness floor of the balance component:
// Jain's index under this over a sweep means some hosts are being
// starved or hammered badly enough to flag.
const balanceDegradedBelow = 0.5

// componentHealth builds the per-component rollup.
func (r *Registry) componentHealth(stats nodestate.Stats, hosts []nodestate.HostHealthReport) map[string]componentHealth {
	comps := make(map[string]componentHealth, 5)

	// Collector: degraded when any host is quarantined or its breaker
	// open — discovery is then deciding on a partial view.
	col := componentHealth{Status: "ok", Values: map[string]float64{
		"sweeps": float64(stats.Sweeps),
		"errors": float64(stats.Errs),
	}}
	for i := range hosts {
		if hosts[i].Health == store.HealthQuarantined {
			col.Status = "degraded"
			col.Note = "one or more hosts quarantined"
			break
		}
	}
	if stats.Sweeps == 0 {
		col.Note = "no sweep has completed yet"
	}
	comps["collector"] = col

	// WAL: a disk-write failure flips the registry read-only.
	switch {
	case r.Durable == nil:
		comps["wal"] = componentHealth{Status: "disabled", Note: "no -data-dir; registry is in-memory"}
	case r.Durable.Degraded():
		comps["wal"] = componentHealth{Status: "degraded", Note: "disk-write failure; registry is read-only"}
	default:
		comps["wal"] = componentHealth{Status: "ok", Values: map[string]float64{
			"segments":    float64(r.Durable.WAL().SegmentCount()),
			"checkpoints": float64(r.Durable.Checkpoints()),
		}}
	}

	// Admission: any brownout tier above nominal means the edge is
	// actively degrading service to stay up.
	if r.Admission == nil {
		comps["admission"] = componentHealth{Status: "disabled", Note: "no admission control; every request served"}
	} else {
		tier := r.Admission.Tier()
		adm := componentHealth{Status: "ok", Values: map[string]float64{
			"tier":        float64(tier),
			"transitions": float64(r.Admission.TierChanges()),
		}}
		if int(tier) > 0 {
			adm.Status = "degraded"
			adm.Note = "brownout ladder engaged"
		}
		comps["admission"] = adm
	}

	// Edge cache: informational — hits and misses say whether the
	// zero-allocation path is doing its job.
	if r.RespCache == nil {
		comps["edgecache"] = componentHealth{Status: "disabled", Note: "response cache off; every discovery re-marshals"}
	} else {
		comps["edgecache"] = componentHealth{Status: "ok", Values: map[string]float64{
			"entries": float64(r.RespCache.Len()),
			"hits":    float64(r.RespCache.Hits.Value()),
			"misses":  float64(r.RespCache.Misses.Value()),
		}}
	}

	// Replication: a follower that cannot reach its leader is serving
	// increasingly stale reads; a leader is healthy whenever its stream
	// endpoints are up (lag is the followers' number to report).
	switch {
	case r.ReplLeader != nil:
		st := r.ReplLeader.Stats()
		comps["repl"] = componentHealth{Status: "ok", Note: "leader", Values: map[string]float64{
			"positionSegment": float64(st.Position.Segment),
			"positionOffset":  float64(st.Position.Offset),
			"seq":             float64(st.Seq),
			"activeStreams":   float64(st.ActiveStreams),
			"recordsStreamed": float64(st.RecordsStreamed),
		}}
	case r.follower.Load() != nil:
		st := r.follower.Load().Stats()
		rc := componentHealth{Status: "ok", Note: "follower", Values: map[string]float64{
			"appliedSegment": float64(st.Applied.Segment),
			"appliedOffset":  float64(st.Applied.Offset),
			"appliedSeq":     float64(st.AppliedSeq),
			"lagRecords":     float64(st.LagRecords),
			"lagSeconds":     st.LagSeconds,
			"applied":        float64(st.AppliedTotal),
			"rebootstraps":   float64(st.Rebootstraps),
		}}
		if !st.Connected {
			rc.Status = "degraded"
			rc.Note = "follower disconnected from leader; reads are going stale"
		}
		comps["repl"] = rc
	default:
		comps["repl"] = componentHealth{Status: "disabled", Note: "standalone registry; no replication role"}
	}

	// Balance: the paper's own success metric, judged per sweep.
	fair := r.Balance.FairnessIndex()
	balc := componentHealth{Status: "ok", Values: map[string]float64{
		"fairnessIndex": fair,
		"capacitySkew":  r.Balance.CapacitySkew(),
		"rollups":       float64(r.Balance.Rollups()),
	}}
	if fair < balanceDegradedBelow {
		balc.Status = "degraded"
		balc.Note = "assignments heavily skewed over the last sweep"
	}
	comps["balance"] = balc

	return comps
}

// bundleConfig is the effective-configuration view in the bundle: the
// knobs reachable from the live components, not the original Config
// struct (which the registry does not retain).
type bundleConfig struct {
	Policy                string  `json:"policy"`
	Freshness             float64 `json:"freshnessSeconds"`
	FallbackAll           bool    `json:"fallbackAll"`
	SnapshotMaxAgeSeconds float64 `json:"snapshotMaxAgeSeconds"`
	TraceSampleRate       int     `json:"traceSampleRate"`
	FlightRing            int     `json:"flightRing"`
	AdmissionEnabled      bool    `json:"admissionEnabled"`
	RespCacheEnabled      bool    `json:"respCacheEnabled"`
	Durable               bool    `json:"durable"`
}

// walPosition is the WAL's write position in the bundle.
type walPosition struct {
	Appends     int64 `json:"appends"`
	Bytes       int64 `json:"bytes"`
	Segments    int64 `json:"segments"`
	Checkpoints int64 `json:"checkpoints"`
	Degraded    bool  `json:"degraded"`
}

// replSection is the replication view in the bundle: role, positions as
// seg:off strings, and the follower's lag and connection state.
type replSection struct {
	Role         string  `json:"role"`
	Position     string  `json:"position"`
	Seq          uint64  `json:"seq"`
	Leader       string  `json:"leader,omitempty"`
	LeaderSeq    uint64  `json:"leaderSeq,omitempty"`
	LagRecords   int64   `json:"lagRecords"`
	LagSeconds   float64 `json:"lagSeconds"`
	Connected    bool    `json:"connected"`
	Applied      int64   `json:"applied"`
	Errors       int64   `json:"errors"`
	Rebootstraps int64   `json:"rebootstraps"`
}

// bundleDoc is the /registry/debug/bundle response shape.
type bundleDoc struct {
	At           string                     `json:"at"`
	Config       bundleConfig               `json:"config"`
	Health       map[string]componentHealth `json:"health"`
	Metrics      string                     `json:"metrics"`
	Flight       []flight.RecordExport      `json:"flight"`
	Traces       []obs.TraceExport          `json:"traces"`
	WAL          *walPosition               `json:"wal"`
	Repl         *replSection               `json:"repl,omitempty"`
	BrownoutTier int                        `json:"brownoutTier"`
	SLO          map[string]obs.SLOBurn     `json:"slo"`
	Balance      map[string]int64           `json:"balanceAssignments"`
	Goroutines   string                     `json:"goroutines,omitempty"`
}

// bundleFlightRecords bounds the flight section of a bundle by default.
const bundleFlightRecords = 256

// handleBundle serves GET /registry/debug/bundle. Query parameters:
// n bounds the flight section (default 256), goroutines=1 opts into a
// full goroutine stack dump (opt-in because it stops the world briefly
// and can be large).
func (r *Registry) handleBundle(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	n := bundleFlightRecords
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	var metricsText strings.Builder
	r.expo.WriteTo(&metricsText)
	recent := r.Tracer.Recent(0)
	traces := make([]obs.TraceExport, 0, len(recent))
	for _, t := range recent {
		traces = append(traces, t.Export())
	}
	var wal *walPosition
	if r.Durable != nil {
		wal = &walPosition{
			Appends:     r.Durable.WAL().Appends(),
			Bytes:       r.Durable.WAL().Bytes(),
			Segments:    r.Durable.WAL().SegmentCount(),
			Checkpoints: r.Durable.Checkpoints(),
			Degraded:    r.Durable.Degraded(),
		}
	}
	tier := 0
	if r.Admission != nil {
		tier = int(r.Admission.Tier())
	}
	var repl *replSection
	switch {
	case r.ReplLeader != nil:
		st := r.ReplLeader.Stats()
		repl = &replSection{
			Role:      "leader",
			Position:  st.Position.String(),
			Seq:       st.Seq,
			Connected: st.ActiveStreams > 0,
			Errors:    st.ErrorsTotal,
		}
	case r.follower.Load() != nil:
		st := r.follower.Load().Stats()
		repl = &replSection{
			Role:         "follower",
			Position:     st.Applied.String(),
			Seq:          st.AppliedSeq,
			Leader:       st.Leader,
			LeaderSeq:    st.LeaderSeq,
			LagRecords:   st.LagRecords,
			LagSeconds:   st.LagSeconds,
			Connected:    st.Connected,
			Applied:      st.AppliedTotal,
			Errors:       st.ErrorsTotal,
			Rebootstraps: st.Rebootstraps,
		}
	}
	doc := bundleDoc{
		At:           r.Clock.Now().UTC().Format(time.RFC3339Nano),
		Config:       r.bundleConfig(),
		Health:       r.componentHealth(r.Collector.FaultStats(), r.Collector.HealthSnapshot()),
		Metrics:      metricsText.String(),
		Flight:       flight.ExportAll(r.Flight.Snapshot(flight.Filter{Limit: n})),
		Traces:       traces,
		WAL:          wal,
		Repl:         repl,
		BrownoutTier: tier,
		SLO:          r.SLOEngine.BurnRates(),
		Balance:      r.Balance.AssignmentsSnapshot(),
	}
	if q.Get("goroutines") == "1" {
		buf := make([]byte, 1<<20)
		doc.Goroutines = string(buf[:runtime.Stack(buf, true)])
	}
	writeJSON(w, doc)
}

func (r *Registry) bundleConfig() bundleConfig {
	return bundleConfig{
		Policy:                r.Balancer.Policy.String(),
		Freshness:             r.Balancer.Freshness.Seconds(),
		FallbackAll:           r.Balancer.FallbackAll,
		SnapshotMaxAgeSeconds: r.Balancer.SnapshotMaxAge.Seconds(),
		TraceSampleRate:       r.Tracer.Sample(),
		FlightRing:            r.Flight.Len(),
		AdmissionEnabled:      r.Admission != nil,
		RespCacheEnabled:      r.RespCache != nil,
		Durable:               r.Durable != nil,
	}
}
