package registry

// Replication wiring tests at the registry layer: follower write
// redirects (307 + typed NotRegistryLeader fault), the submit-via-follower
// end-to-end flow landing on the leader and replicating back into the
// follower's local discovery reads, and the repl sections of health,
// bundle, and metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/simclock"
	"repro/internal/soap"
	"repro/internal/wal"
)

// newReplPair boots a durable leader registry and a follower registry
// tailing it, each behind its own test server. The follower is returned
// cold: tests Bootstrap/Poll it explicitly for determinism.
func newReplPair(t *testing.T) (leader *Registry, lsrv *httptest.Server, follower *Registry, fsrv *httptest.Server, f *repl.Follower) {
	t.Helper()
	leader, err := New(Config{
		Clock:      simclock.NewManual(t0),
		Policy:     core.PolicyStock,
		DataDir:    t.TempDir(),
		Fsync:      wal.FsyncAlways,
		ReplLeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Durable.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lsrv = httptest.NewServer(leader.Handler())
	t.Cleanup(lsrv.Close)

	follower, err = New(Config{
		Clock:         simclock.NewManual(t0),
		Policy:        core.PolicyStock,
		ReplFollowURL: lsrv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err = repl.OpenFollower(t.TempDir(), follower.Store, repl.FollowerOptions{
		LeaderURL: lsrv.URL,
		Clock:     simclock.NewManual(t0),
		Client:    lsrv.Client(),
		Seed:      3,
		PollWait:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	follower.AttachFollower(f)
	t.Cleanup(func() { f.Close() })
	fsrv = httptest.NewServer(follower.Handler())
	t.Cleanup(fsrv.Close)
	return leader, lsrv, follower, fsrv, f
}

func followerCatchUp(t *testing.T, f *repl.Follower, leader *Registry) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		want, _ := leader.Durable.WAL().Committed()
		if f.Stats().Applied == want {
			return
		}
		if _, err := f.Poll(ctx); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("follower did not catch up to the leader")
}

func TestReplFollowerRedirectsWritesWith307(t *testing.T) {
	_, lsrv, _, fsrv, _ := newReplPair(t)

	noFollow := &http.Client{
		Timeout:       10 * time.Second,
		CheckRedirect: func(req *http.Request, via []*http.Request) error { return http.ErrUseLastResponse },
	}
	postEnvelope := func(path string, payload interface{}) *http.Response {
		t.Helper()
		data, err := soap.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := noFollow.Post(fsrv.URL+path, soap.ContentType, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A write on the follower answers 307 + Location + typed fault.
	resp := postEnvelope("/soap/registry", &soapRequest{
		Submit: &SubmitObjectsRequest{Session: "any", Objects: []WireObject{{Kind: "Organization", Name: "X"}}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower write → %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != lsrv.URL+"/soap/registry" {
		t.Fatalf("Location = %q, want %q", got, lsrv.URL+"/soap/registry")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "NotRegistryLeader") {
		t.Fatalf("fault body does not name NotRegistryLeader: %s", body)
	}

	// Auth is node-local state, so every auth operation redirects too.
	aresp := postEnvelope("/soap/auth", &authRequest{Challenge: &ChallengeRequest{Alias: "anyone"}})
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower auth → %d, want 307", aresp.StatusCode)
	}
	if got := aresp.Header.Get("Location"); got != lsrv.URL+"/soap/auth" {
		t.Fatalf("auth Location = %q", got)
	}

	// Reads are served locally — never redirected (the unknown service
	// answers a local fault, proving the request was not bounced).
	rresp := postEnvelope("/soap/registry", &soapRequest{Bindings: &GetBindingsRequest{ServiceName: "nothing"}})
	defer rresp.Body.Close()
	if rresp.StatusCode == http.StatusTemporaryRedirect || rresp.Header.Get("Location") != "" {
		t.Fatalf("follower read redirected: %d Location=%q", rresp.StatusCode, rresp.Header.Get("Location"))
	}
}

func TestReplSubmitViaFollowerReplicatesToLocalReads(t *testing.T) {
	leader, _, _, fsrv, f := newReplPair(t)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	followerCatchUp(t, f, leader)

	// The whole wizard + submit runs against the FOLLOWER's URL; Go's
	// http.Client follows each 307 to the leader transparently.
	client := fsrv.Client()
	token := registerAndLogin(t, client, fsrv.URL, "replica")
	var resp RegistryResponse
	err := soap.Post(client, fsrv.URL+"/soap/registry", &soapRequest{
		Submit: &SubmitObjectsRequest{
			Session: token,
			Objects: []WireObject{{Kind: "Service", Name: "ReplicatedAdder",
				Bindings: []WireBinding{{AccessURI: "http://thermo.sdsu.edu:8080/Adder/addService"}}}},
		},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "Success" || len(resp.IDs) != 1 {
		t.Fatalf("submit via follower = %+v", resp)
	}
	if _, err := leader.Store.Get(resp.IDs[0]); err != nil {
		t.Fatalf("write did not land on the leader: %v", err)
	}

	// Not replicated yet: the follower's local read answers empty.
	before := getBindingsHTTP(t, fsrv, "ReplicatedAdder")
	if len(before) != 0 {
		t.Fatalf("follower served bindings before replication: %v", before)
	}

	followerCatchUp(t, f, leader)
	after := getBindingsHTTP(t, fsrv, "ReplicatedAdder")
	if len(after) != 1 || !strings.Contains(after[0], "thermo") {
		t.Fatalf("follower bindings after catch-up = %v", after)
	}
}

func getBindingsHTTP(t *testing.T, srv *httptest.Server, service string) []string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=" + service)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The service is not in this registry's local state yet.
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bindings status %d", resp.StatusCode)
	}
	var out struct {
		URIs []string `json:"uris"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.URIs
}

func TestReplHealthBundleAndMetricsSections(t *testing.T) {
	leader, lsrv, _, fsrv, f := newReplPair(t)
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}

	var health struct {
		Components map[string]struct {
			Status string `json:"status"`
			Note   string `json:"note"`
		}
	}
	getJSON := func(srv *httptest.Server, path string, into interface{}) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
	getJSON(lsrv, "/registry/health", &health)
	if c := health.Components["repl"]; c.Status != "ok" || c.Note != "leader" {
		t.Fatalf("leader repl health = %+v", c)
	}
	getJSON(fsrv, "/registry/health", &health)
	if c := health.Components["repl"]; c.Status != "ok" || c.Note != "follower" {
		t.Fatalf("follower repl health = %+v", c)
	}

	var bundle struct {
		Repl *struct {
			Role      string `json:"role"`
			Connected bool   `json:"connected"`
		} `json:"repl"`
	}
	getJSON(fsrv, "/registry/debug/bundle", &bundle)
	if bundle.Repl == nil || bundle.Repl.Role != "follower" || !bundle.Repl.Connected {
		t.Fatalf("follower bundle repl = %+v", bundle.Repl)
	}
	getJSON(lsrv, "/registry/debug/bundle", &bundle)
	if bundle.Repl == nil || bundle.Repl.Role != "leader" {
		t.Fatalf("leader bundle repl = %+v", bundle.Repl)
	}

	scrape := scrapeMetrics(t, fsrv)
	leaderPos, _ := leader.Durable.WAL().Committed()
	if got, ok := scrape.Value("registry_repl_position", map[string]string{"part": "segment"}); !ok || got != float64(leaderPos.Segment) {
		t.Fatalf("follower registry_repl_position segment = %v (ok=%v), want %d", got, ok, leaderPos.Segment)
	}
	if got, ok := scrape.Value("registry_repl_connected", nil); !ok || got != 1 {
		t.Fatalf("follower registry_repl_connected = %v (ok=%v)", got, ok)
	}
	if got, ok := scrape.Value("registry_repl_lag_records", nil); !ok || got != 0 {
		t.Fatalf("follower registry_repl_lag_records = %v (ok=%v)", got, ok)
	}
}
