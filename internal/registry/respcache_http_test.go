package registry

// Response-cache integration suite: byte-identical answers before and
// after a cache hit on both the REST and SOAP bindings surfaces, epoch
// invalidation on LCM writes, generation keying on NodeState movement
// (quarantine), tier keying across the brownout ladder, and a concurrent
// hammer for -race. The cache only engages with tracing unsampled, so
// every registry here runs TraceSample 0.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/soap"
	"repro/internal/store"
)

// newCachedRegistry builds a registry with the response cache live
// (tracing off), a 4-host "Adder" service, and deterministic NodeState
// rows so every host is eligible. adm may be nil; cacheSize follows
// Config.RespCacheSize semantics (0 default, negative disables).
func newCachedRegistry(t *testing.T, adm *admit.Config, cacheSize int) (*Registry, *httptest.Server, *rim.Service) {
	t.Helper()
	reg, err := New(Config{
		Clock:          simclock.NewManual(t0),
		Policy:         core.PolicyFilter,
		SnapshotMaxAge: 25 * time.Second,
		Admission:      adm,
		RespCacheSize:  cacheSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService("Adder",
		`<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
	for _, name := range []string{"h00.sdsu.edu", "h01.sdsu.edu", "h02.sdsu.edu", "h03.sdsu.edu"} {
		svc.AddBinding("http://" + name + ":8080/Adder/addService")
		reg.Store.NodeState().Upsert(store.NodeState{
			Host: name, Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0,
		})
	}
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return reg, srv, svc
}

// getBindings fetches the REST discovery endpoint and returns the body.
func getBindings(t *testing.T, srv *httptest.Server, service string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=" + service)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bindings status = %d (body %q)", resp.StatusCode, body)
	}
	return string(body), resp
}

// postBindingsRaw POSTs a GetBindingsRequest envelope and returns the raw
// response bytes, so byte-identity can be asserted on the SOAP surface.
func postBindingsRaw(t *testing.T, srv *httptest.Server, req *GetBindingsRequest) []byte {
	t.Helper()
	env, err := soap.Marshal(&soapRequest{Bindings: req})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/soap/registry", soap.ContentType, bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("soap bindings status = %d (body %q)", resp.StatusCode, body)
	}
	return body
}

// TestRESTCacheHitIsByteIdentical: the first GET renders and stores, the
// second is served from the preserialized entry — and the client cannot
// tell them apart.
func TestRESTCacheHitIsByteIdentical(t *testing.T) {
	reg, srv, _ := newCachedRegistry(t, nil, 0)

	first, resp1 := getBindings(t, srv, "Adder")
	if got, want := reg.RespCache.Misses.Value(), int64(1); got != want {
		t.Fatalf("misses after cold GET = %d, want %d", got, want)
	}
	second, resp2 := getBindings(t, srv, "Adder")
	if got, want := reg.RespCache.Hits.Value(), int64(1); got != want {
		t.Fatalf("hits after warm GET = %d, want %d", got, want)
	}
	if first != second {
		t.Fatalf("cached response differs from fresh:\nfresh: %q\ncached: %q", first, second)
	}
	if ct1, ct2 := resp1.Header.Get("Content-Type"), resp2.Header.Get("Content-Type"); ct1 != ct2 || ct1 != "application/json" {
		t.Fatalf("content types differ: fresh %q cached %q", ct1, ct2)
	}
	for _, host := range []string{"h00", "h01", "h02", "h03"} {
		if !strings.Contains(second, host) {
			t.Errorf("cached body missing %s: %q", host, second)
		}
	}
	if got, want := reg.RespCache.Len(), 1; got != want {
		t.Fatalf("cache entries = %d, want %d", got, want)
	}
}

// TestSOAPCacheHitIsByteIdentical covers both key spaces (by-name and
// by-id) and the cross-protocol entry: the envelope preserialized on the
// SOAP miss also answers the REST edge, and vice versa.
func TestSOAPCacheHitIsByteIdentical(t *testing.T) {
	reg, srv, svc := newCachedRegistry(t, nil, 0)

	byName := &GetBindingsRequest{ServiceName: "Adder"}
	fresh := postBindingsRaw(t, srv, byName)
	cached := postBindingsRaw(t, srv, byName)
	if !bytes.Equal(fresh, cached) {
		t.Fatalf("SOAP by-name cached envelope differs:\nfresh: %q\ncached: %q", fresh, cached)
	}
	if got, want := reg.RespCache.Hits.Value(), int64(1); got != want {
		t.Fatalf("hits after by-name pair = %d, want %d", got, want)
	}

	byID := &GetBindingsRequest{ServiceID: svc.ID}
	freshID := postBindingsRaw(t, srv, byID)
	cachedID := postBindingsRaw(t, srv, byID)
	if !bytes.Equal(freshID, cachedID) {
		t.Fatalf("SOAP by-id cached envelope differs:\nfresh: %q\ncached: %q", freshID, cachedID)
	}
	if got, want := reg.RespCache.Len(), 2; got != want {
		t.Fatalf("cache entries = %d, want %d (name + id spaces)", got, want)
	}

	// The by-name entry carries both encodings: the REST edge answers
	// from the same entry without a second balancer run.
	misses := reg.RespCache.Misses.Value()
	body, _ := getBindings(t, srv, "Adder")
	if got := reg.RespCache.Misses.Value(); got != misses {
		t.Fatalf("REST after SOAP by-name missed (misses %d -> %d), want shared hit", misses, got)
	}
	if !strings.Contains(body, "h00.sdsu.edu") {
		t.Fatalf("cross-protocol REST body = %q", body)
	}
}

// TestLCMWriteInvalidates: a life-cycle write bumps the epoch, so the
// next request re-renders and reflects the new binding list even though
// the snapshot generation never moved.
func TestLCMWriteInvalidates(t *testing.T) {
	reg, srv, svc := newCachedRegistry(t, nil, 0)

	// Row first, so the later write is the only cache-relevant event.
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "h04.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0,
	})
	before, _ := getBindings(t, srv, "Adder")
	if strings.Contains(before, "h04") {
		t.Fatalf("h04 bound before the update: %q", before)
	}
	invalidations := reg.RespCache.Invalidations.Value()

	svc.AddBinding("http://h04.sdsu.edu:8080/Adder/addService")
	if err := reg.LCM.UpdateObjects(reg.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
	if got := reg.RespCache.Invalidations.Value(); got != invalidations+1 {
		t.Fatalf("invalidations after LCM write: %d -> %d, want one bump", invalidations, got)
	}

	after, _ := getBindings(t, srv, "Adder")
	if !strings.Contains(after, "h04.sdsu.edu") {
		t.Fatalf("stale cache served after LCM write: %q", after)
	}
	if got, want := reg.RespCache.Misses.Value(), int64(2); got != want {
		t.Fatalf("misses = %d, want %d (epoch invalidated the entry)", got, want)
	}
	if got, want := reg.RespCache.Hits.Value(), int64(0); got != want {
		t.Fatalf("hits = %d, want %d", got, want)
	}
}

// TestQuarantineInvalidatesViaGeneration: a NodeState write never touches
// the epoch — the snapshot generation key alone must retire the entry, and
// the recomputed answer must exclude the quarantined host.
func TestQuarantineInvalidatesViaGeneration(t *testing.T) {
	reg, srv, _ := newCachedRegistry(t, nil, 0)

	before, _ := getBindings(t, srv, "Adder")
	if !strings.Contains(before, "h00.sdsu.edu") {
		t.Fatalf("h00 missing before quarantine: %q", before)
	}
	invalidations := reg.RespCache.Invalidations.Value()

	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "h00.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 1 << 30,
		Updated: t0, Health: store.HealthQuarantined,
	})
	// Within SnapshotMaxAge the balancer itself tolerates the stale
	// snapshot (RCU window) — and so, correctly, does the cache. Step past
	// the window so the next read republishes and the generation moves.
	reg.Clock.(*simclock.Manual).Advance(26 * time.Second)
	after, _ := getBindings(t, srv, "Adder")
	if strings.Contains(after, "h00.sdsu.edu") {
		t.Fatalf("quarantined host served from stale cache: %q", after)
	}
	if !strings.Contains(after, "h01.sdsu.edu") {
		t.Fatalf("healthy host missing after quarantine: %q", after)
	}
	if got, want := reg.RespCache.Misses.Value(), int64(2); got != want {
		t.Fatalf("misses = %d, want %d (generation key must invalidate)", got, want)
	}
	if got := reg.RespCache.Invalidations.Value(); got != invalidations {
		t.Fatalf("invalidations %d -> %d, want unchanged (no epoch bump on NodeState writes)", invalidations, got)
	}
}

// TestBrownoutTierKeysCache: entries are keyed by the brownout tier, and
// every tier transition flushes the epoch outright — a response rendered
// under nominal conditions is never served during a brownout, and one
// rendered during the brownout is never served after recovery.
func TestBrownoutTierKeysCache(t *testing.T) {
	adm := admitTestConfig()
	reg, srv, _ := newCachedRegistry(t, &adm, 0)

	// Warm path through the admission middleware's FastServe hook.
	getBindings(t, srv, "Adder")
	getBindings(t, srv, "Adder")
	if got, want := reg.RespCache.Hits.Value(), int64(1); got != want {
		t.Fatalf("hits at nominal tier = %d, want %d", got, want)
	}

	driveDiscoveryOverload(reg, 5*time.Second)
	if got := reg.Admission.Tier(); got < admit.TierStale {
		t.Fatalf("tier after overload = %v, want >= TierStale", got)
	}
	if got := reg.RespCache.Invalidations.Value(); got < 1 {
		t.Fatalf("invalidations after tier climb = %d, want >= 1", got)
	}

	// The brownout answer is computed fresh (and re-cached under the new
	// tier key), then served warm while the tier holds.
	misses := reg.RespCache.Misses.Value()
	getBindings(t, srv, "Adder")
	if got := reg.RespCache.Misses.Value(); got != misses+1 {
		t.Fatalf("first brownout GET: misses %d -> %d, want a miss under the new tier", misses, got)
	}
	hits := reg.RespCache.Hits.Value()
	getBindings(t, srv, "Adder")
	if got := reg.RespCache.Hits.Value(); got != hits+1 {
		t.Fatalf("second brownout GET: hits %d -> %d, want a hit at the held tier", hits, got)
	}

	// Recovery is itself a tier transition: the brownout-era entry dies.
	calmDiscovery(reg, 200)
	if got := reg.Admission.Tier(); got != admit.TierNominal {
		t.Fatalf("tier after calm = %v, want TierNominal", got)
	}
	misses = reg.RespCache.Misses.Value()
	getBindings(t, srv, "Adder")
	if got := reg.RespCache.Misses.Value(); got != misses+1 {
		t.Fatalf("post-recovery GET: misses %d -> %d, want a fresh render", misses, got)
	}
}

// TestRespCacheDisabled: RespCacheSize < 0 turns the whole subsystem off —
// both surfaces still answer, deterministically, with no cache wired.
func TestRespCacheDisabled(t *testing.T) {
	reg, srv, _ := newCachedRegistry(t, nil, -1)
	if reg.RespCache != nil {
		t.Fatal("RespCache built despite RespCacheSize < 0")
	}
	first, _ := getBindings(t, srv, "Adder")
	second, _ := getBindings(t, srv, "Adder")
	if first != second {
		t.Fatalf("uncached responses differ:\n%q\n%q", first, second)
	}
	env := postBindingsRaw(t, srv, &GetBindingsRequest{ServiceName: "Adder"})
	if !bytes.Contains(env, []byte("h00.sdsu.edu")) {
		t.Fatalf("SOAP answer without cache = %q", env)
	}
}

// TestCachedDiscoveryConcurrent hammers the cached edge from many clients
// while writes churn both invalidation keys underneath it: LCM submissions
// bump the epoch and NodeState upserts move the snapshot generation. Run
// with -race; every response must be complete and well-formed.
func TestCachedDiscoveryConcurrent(t *testing.T) {
	reg, srv, _ := newCachedRegistry(t, nil, 0)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for j := 0; j < perWorker; j++ {
				resp, err := client.Get(srv.URL + "/registry/bindings?service=Adder")
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "h01.sdsu.edu") {
					errs <- &soap.Fault{Code: "test", String: string(body)}
					return
				}
			}
		}()
	}
	// Churn both cache keys while the readers run.
	for k := 0; k < 25; k++ {
		noise := rim.NewService("Noise", "")
		noise.AddBinding("http://noise.sdsu.edu:8080/Noise/n")
		if err := reg.LCM.SubmitObjects(reg.AdminContext(), noise); err != nil {
			t.Error(err)
			break
		}
		reg.Store.NodeState().Upsert(store.NodeState{
			Host: "h03.sdsu.edu", Load: 0.2 + float64(k)*0.01,
			MemoryB: 4 << 30, SwapB: 1 << 30, Updated: t0,
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits, misses := reg.RespCache.Hits.Value(), reg.RespCache.Misses.Value(); hits+misses < workers*perWorker {
		t.Fatalf("hits %d + misses %d < %d requests", hits, misses, workers*perWorker)
	}
}
