package registry

import (
	"fmt"

	"repro/internal/rim"
)

// WireObject is the XML wire form of a registry object, used by the SOAP
// protocol bindings. It is a flat union over the concrete ebRIM classes:
// Kind selects which optional field groups are meaningful. Keeping one
// wire struct (instead of one element per class) mirrors freebXML's
// RegistryObjectList, where heterogeneous objects travel in one list.
type WireObject struct {
	XMLName struct{} `xml:"RegistryObject"`
	Kind    string   `xml:"kind,attr"`

	ID          string `xml:"id,attr"`
	LID         string `xml:"lid,attr,omitempty"`
	Status      string `xml:"status,attr,omitempty"`
	Owner       string `xml:"owner,attr,omitempty"`
	Home        string `xml:"home,attr,omitempty"`
	Version     string `xml:"versionName,attr,omitempty"`
	Name        string `xml:"Name,omitempty"`
	Description string `xml:"Description,omitempty"`

	Slots []WireSlot `xml:"Slot,omitempty"`

	// Organization / User fields.
	Addresses  []WireAddress   `xml:"PostalAddress,omitempty"`
	Emails     []WireEmail     `xml:"EmailAddress,omitempty"`
	Telephones []WireTelephone `xml:"TelephoneNumber,omitempty"`
	ParentID   string          `xml:"parent,attr,omitempty"`

	// User fields.
	Alias      string `xml:"alias,attr,omitempty"`
	FirstName  string `xml:"firstName,attr,omitempty"`
	MiddleName string `xml:"middleName,attr,omitempty"`
	LastName   string `xml:"lastName,attr,omitempty"`

	// Service fields.
	Bindings []WireBinding `xml:"ServiceBinding,omitempty"`

	// Association fields.
	AssociationType string `xml:"associationType,attr,omitempty"`
	SourceID        string `xml:"sourceObject,attr,omitempty"`
	TargetID        string `xml:"targetObject,attr,omitempty"`

	// ExternalLink fields.
	ExternalURI string `xml:"externalURI,attr,omitempty"`

	// AdhocQuery fields.
	QuerySyntax string `xml:"querySyntax,attr,omitempty"`
	QueryText   string `xml:"QueryExpression,omitempty"`

	// ClassificationNode fields.
	Code string `xml:"code,attr,omitempty"`
	Path string `xml:"path,attr,omitempty"`
}

// WireSlot is a Slot on the wire.
type WireSlot struct {
	Name   string   `xml:"name,attr"`
	Values []string `xml:"Value"`
}

// WireAddress is a PostalAddress on the wire.
type WireAddress struct {
	StreetNumber string `xml:"streetNumber,attr,omitempty"`
	Street       string `xml:"street,attr,omitempty"`
	City         string `xml:"city,attr,omitempty"`
	State        string `xml:"stateOrProvince,attr,omitempty"`
	Country      string `xml:"country,attr,omitempty"`
	PostalCode   string `xml:"postalCode,attr,omitempty"`
	Type         string `xml:"type,attr,omitempty"`
}

// WireEmail is an EmailAddress on the wire.
type WireEmail struct {
	Address string `xml:"address,attr"`
	Type    string `xml:"type,attr,omitempty"`
}

// WireTelephone is a TelephoneNumber on the wire.
type WireTelephone struct {
	CountryCode string `xml:"countryCode,attr,omitempty"`
	AreaCode    string `xml:"areaCode,attr,omitempty"`
	Number      string `xml:"number,attr"`
	Extension   string `xml:"extension,attr,omitempty"`
	Type        string `xml:"phoneType,attr,omitempty"`
}

// WireBinding is a ServiceBinding on the wire.
type WireBinding struct {
	ID            string `xml:"id,attr,omitempty"`
	AccessURI     string `xml:"accessURI,attr,omitempty"`
	TargetBinding string `xml:"targetBinding,attr,omitempty"`
	Description   string `xml:"Description,omitempty"`
}

// ToWire converts a rim object to its wire form.
func ToWire(o rim.Object) (*WireObject, error) {
	b := o.Base()
	w := &WireObject{
		Kind:        b.ObjectType.Short(),
		ID:          b.ID,
		LID:         b.LID,
		Status:      string(b.Status),
		Owner:       b.Owner,
		Home:        b.Home,
		Version:     b.Version.VersionName,
		Name:        b.Name.String(),
		Description: b.Description.String(),
	}
	for _, s := range b.Slots {
		w.Slots = append(w.Slots, WireSlot{Name: s.Name, Values: s.Values})
	}
	switch v := o.(type) {
	case *rim.Organization:
		w.ParentID = v.ParentID
		for _, a := range v.Addresses {
			w.Addresses = append(w.Addresses, WireAddress(a))
		}
		for _, e := range v.Emails {
			w.Emails = append(w.Emails, WireEmail(e))
		}
		for _, p := range v.Telephones {
			w.Telephones = append(w.Telephones, WireTelephone(p))
		}
	case *rim.User:
		w.Alias = v.Alias
		w.FirstName = v.PersonName.FirstName
		w.MiddleName = v.PersonName.MiddleName
		w.LastName = v.PersonName.LastName
	case *rim.Service:
		for _, bind := range v.Bindings {
			w.Bindings = append(w.Bindings, WireBinding{
				ID:            bind.ID,
				AccessURI:     bind.AccessURI,
				TargetBinding: bind.TargetBindingID,
				Description:   bind.Description.String(),
			})
		}
	case *rim.Association:
		w.AssociationType = string(v.AssociationType)
		w.SourceID = v.SourceID
		w.TargetID = v.TargetID
	case *rim.ExternalLink:
		w.ExternalURI = v.ExternalURI
	case *rim.AdhocQuery:
		w.QuerySyntax = v.QuerySyntax
		w.QueryText = v.Query
	case *rim.ClassificationScheme:
		// no extra fields carried
	case *rim.ClassificationNode:
		w.ParentID = v.ParentID
		w.Code = v.Code
		w.Path = v.Path
	case *rim.RegistryPackage:
		// base fields only
	default:
		return nil, fmt.Errorf("registry: cannot wire-encode %T", o)
	}
	return w, nil
}

// FromWire converts a wire object back to a rim object. Objects without an
// id get a fresh one, so clients may omit ids on submit.
func (w *WireObject) FromWire() (rim.Object, error) {
	base := rim.RegistryObject{
		ID:          w.ID,
		LID:         w.LID,
		Name:        rim.NewIString(w.Name),
		Description: rim.NewIString(w.Description),
		Status:      rim.Status(w.Status),
		Owner:       w.Owner,
		Home:        w.Home,
		Version:     rim.VersionInfo{VersionName: w.Version},
	}
	if base.ID == "" {
		base.ID = rim.NewUUID()
	}
	if base.LID == "" {
		base.LID = base.ID
	}
	if base.Status == "" {
		base.Status = rim.StatusSubmitted
	}
	if base.Version.VersionName == "" {
		base.Version.VersionName = "1.1"
	}
	for _, s := range w.Slots {
		base.Slots = append(base.Slots, rim.Slot{Name: s.Name, Values: s.Values})
	}

	switch w.Kind {
	case "Organization":
		base.ObjectType = rim.TypeOrganization
		o := &rim.Organization{RegistryObject: base, ParentID: w.ParentID}
		for _, a := range w.Addresses {
			o.Addresses = append(o.Addresses, rim.PostalAddress(a))
		}
		for _, e := range w.Emails {
			o.Emails = append(o.Emails, rim.EmailAddress(e))
		}
		for _, p := range w.Telephones {
			o.Telephones = append(o.Telephones, rim.TelephoneNumber(p))
		}
		return o, nil
	case "User":
		base.ObjectType = rim.TypeUser
		return &rim.User{
			RegistryObject: base,
			Alias:          w.Alias,
			PersonName:     rim.PersonName{FirstName: w.FirstName, MiddleName: w.MiddleName, LastName: w.LastName},
		}, nil
	case "Service":
		base.ObjectType = rim.TypeService
		s := &rim.Service{RegistryObject: base}
		for _, wb := range w.Bindings {
			b := rim.NewServiceBinding(s.ID, wb.AccessURI)
			if wb.ID != "" {
				b.ID = wb.ID
				b.LID = wb.ID
			}
			b.TargetBindingID = wb.TargetBinding
			b.Description = rim.NewIString(wb.Description)
			s.Bindings = append(s.Bindings, b)
		}
		return s, nil
	case "Association":
		base.ObjectType = rim.TypeAssociation
		return &rim.Association{
			RegistryObject:  base,
			AssociationType: rim.AssociationType(w.AssociationType),
			SourceID:        w.SourceID,
			TargetID:        w.TargetID,
		}, nil
	case "ExternalLink":
		base.ObjectType = rim.TypeExternalLink
		return &rim.ExternalLink{RegistryObject: base, ExternalURI: w.ExternalURI}, nil
	case "AdhocQuery":
		base.ObjectType = rim.TypeAdhocQuery
		return &rim.AdhocQuery{RegistryObject: base, QuerySyntax: w.QuerySyntax, Query: w.QueryText}, nil
	case "ClassificationScheme":
		base.ObjectType = rim.TypeClassificationScheme
		return &rim.ClassificationScheme{RegistryObject: base, IsInternal: true, NodeType: "UniqueCode"}, nil
	case "ClassificationNode":
		base.ObjectType = rim.TypeClassificationNode
		return &rim.ClassificationNode{RegistryObject: base, ParentID: w.ParentID, Code: w.Code, Path: w.Path}, nil
	case "RegistryPackage":
		base.ObjectType = rim.TypeRegistryPackage
		return &rim.RegistryPackage{RegistryObject: base}, nil
	default:
		return nil, fmt.Errorf("registry: unknown wire kind %q", w.Kind)
	}
}
