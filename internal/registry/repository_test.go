package registry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cataloger"
	"repro/internal/rim"
)

const adderWSDL = `<?xml version="1.0"?>
<definitions name="Adder" targetNamespace="http://sdsu.edu/adder"
    xmlns="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/">
  <portType name="AdderPortType"/>
  <binding name="AdderSoapBinding"/>
  <service name="addService">
    <port name="AdderPort" binding="tns:AdderSoapBinding">
      <soap:address location="http://thermo.sdsu.edu:8080/Adder/addService"/>
    </port>
  </service>
</definitions>`

func TestSubmitRepositoryItemCatalogsWSDL(t *testing.T) {
	reg := newRegistry(t)
	ctx := reg.AdminContext()
	eo := rim.NewExtrinsicObject("adder.wsdl", "text/xml")
	if err := reg.SubmitRepositoryItem(ctx, eo, []byte(adderWSDL)); err != nil {
		t.Fatal(err)
	}
	got, content, err := reg.GetRepositoryItem(eo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != adderWSDL {
		t.Fatal("content mismatch")
	}
	if ns, _ := got.SlotValue(cataloger.SlotWSDLTargetNamespace); ns != "http://sdsu.edu/adder" {
		t.Fatalf("namespace slot = %q", ns)
	}
	// The predefined WSDL discovery query finds it by namespace pattern.
	found := reg.FindRepositoryItemsByWSDLNamespace("http://sdsu.edu/%")
	if len(found) != 1 || found[0].ID != eo.ID {
		t.Fatalf("namespace search = %+v", found)
	}
	if len(reg.FindRepositoryItemsByWSDLNamespace("urn:none%")) != 0 {
		t.Fatal("namespace search over-matched")
	}
}

func TestSubmitRepositoryItemRejectsBadWSDL(t *testing.T) {
	reg := newRegistry(t)
	eo := rim.NewExtrinsicObject("bad.wsdl", "application/wsdl+xml")
	err := reg.SubmitRepositoryItem(reg.AdminContext(), eo, []byte(`<definitions targetNamespace="urn:x"/>`))
	if err == nil || !strings.Contains(err.Error(), "content rejected") {
		t.Fatalf("bad wsdl: %v", err)
	}
	// Nothing leaked into the store.
	if reg.Store.Has(eo.ID) {
		t.Fatal("rejected metadata stored")
	}
}

func TestRemoveRepositoryItem(t *testing.T) {
	reg := newRegistry(t)
	ctx := reg.AdminContext()
	eo := rim.NewExtrinsicObject("doc.xml", "text/xml")
	if err := reg.SubmitRepositoryItem(ctx, eo, []byte(`<doc/>`)); err != nil {
		t.Fatal(err)
	}
	if err := reg.RemoveRepositoryItem(ctx, eo.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.GetRepositoryItem(eo.ID); err == nil {
		t.Fatal("item survived removal")
	}
	if _, err := reg.Store.GetContent(eo.ContentID); err == nil {
		t.Fatal("content survived removal")
	}
}

func TestRepositoryItemTypeMismatch(t *testing.T) {
	reg := newRegistry(t)
	org := rim.NewOrganization("SDSU")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), org); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.GetRepositoryItem(org.ID); err == nil {
		t.Fatal("organization served as content")
	}
	if err := reg.RemoveRepositoryItem(reg.AdminContext(), org.ID); err == nil {
		t.Fatal("organization removed as content")
	}
}

func TestContentHTTPBinding(t *testing.T) {
	reg := newRegistry(t)
	eo := rim.NewExtrinsicObject("adder.wsdl", "text/xml")
	if err := reg.SubmitRepositoryItem(reg.AdminContext(), eo, []byte(adderWSDL)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/registry/content?id=" + eo.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != adderWSDL {
		t.Fatalf("content binding: %d %q", resp.StatusCode, body[:min(40, len(body))])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/xml" {
		t.Fatalf("content type = %q", ct)
	}
	if resp2, _ := http.Get(srv.URL + "/registry/content?id=urn:uuid:ghost"); resp2.StatusCode != 404 {
		t.Fatalf("ghost content status = %d", resp2.StatusCode)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
