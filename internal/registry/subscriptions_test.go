package registry

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/rim"
	"repro/internal/soap"
)

func TestSubscribeEmailDelivery(t *testing.T) {
	reg := newRegistry(t)
	id, err := reg.Subscribe("urn:uuid:watcher",
		events.Selector{ObjectType: rim.TypeService, NamePattern: "Demo%"},
		"", "watcher@sdsu.edu")
	if err != nil {
		t.Fatal(err)
	}
	svc := rim.NewService("DemoSvc", "")
	svc.AddBinding("http://h.example/x")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
	outbox := reg.EmailOutbox()
	if len(outbox) != 1 || !strings.Contains(outbox[0], "watcher@sdsu.edu") || !strings.Contains(outbox[0], "DemoSvc") {
		t.Fatalf("outbox = %v", outbox)
	}
	// Non-matching events stay silent.
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), rim.NewOrganization("Org")); err != nil {
		t.Fatal(err)
	}
	if len(reg.EmailOutbox()) != 1 {
		t.Fatal("organization event leaked to service subscription")
	}
	if !reg.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
}

func TestSubscribeValidation(t *testing.T) {
	reg := newRegistry(t)
	if _, err := reg.Subscribe("u", events.Selector{}, "", ""); err == nil {
		t.Fatal("no delivery target accepted")
	}
	if _, err := reg.Subscribe("u", events.Selector{}, "http://x/", "y@z"); err == nil {
		t.Fatal("two delivery targets accepted")
	}
}

func TestSubscribeOverSOAPWithWebServiceDelivery(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()
	token := registerAndLogin(t, client, srv.URL, "subscriber")

	// A listener Web Service that records notifications.
	var got []events.WireNotification
	listener := httptest.NewServer(soap.Endpoint(func(n *events.WireNotification) (interface{}, error) {
		got = append(got, *n)
		return &struct {
			XMLName struct{} `xml:"Ack"`
		}{}, nil
	}))
	defer listener.Close()

	var sub SubscribeResponse
	err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Subscribe: &SubscribeRequest{
		Session: token, ObjectKind: "Service", NamePattern: "Watched%",
		EventTypes: []string{"Created"}, NotifyURI: listener.URL,
	}}, &sub)
	if err != nil {
		t.Fatal(err)
	}
	if sub.SubscriptionID == "" {
		t.Fatal("no subscription id")
	}

	// Publish a matching service over SOAP; the listener must hear it.
	var resp RegistryResponse
	submit := &SubmitObjectsRequest{Session: token, Objects: []WireObject{{
		Kind: "Service", Name: "WatchedService",
		Bindings: []WireBinding{{AccessURI: "http://h.example/w"}},
	}}}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Submit: submit}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].EventKind != "Created" || len(got[0].ObjectIDs) != 1 {
		t.Fatalf("notifications = %+v", got)
	}

	// Deleting the service fires no event (subscription is Created-only).
	remove := &RemoveObjectsRequest{ObjectRefRequest: ObjectRefRequest{Session: token, IDs: resp.IDs}}
	if err := soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Remove: remove}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delete leaked: %+v", got)
	}

	// Unsubscribe over SOAP.
	var ack RegistryResponse
	err = soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Unsubscribe: &UnsubscribeRequest{
		Session: token, SubscriptionID: sub.SubscriptionID,
	}}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown id now faults.
	err = soap.Post(client, srv.URL+"/soap/registry", &soapRequest{Unsubscribe: &UnsubscribeRequest{
		Session: token, SubscriptionID: sub.SubscriptionID,
	}}, &ack)
	if err == nil {
		t.Fatal("double unsubscribe accepted")
	}
}

func TestSubscribeRequiresSession(t *testing.T) {
	reg := newRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	var sub SubscribeResponse
	err := soap.Post(srv.Client(), srv.URL+"/soap/registry", &soapRequest{Subscribe: &SubscribeRequest{
		Email: "x@y",
	}}, &sub)
	if err == nil {
		t.Fatal("anonymous subscribe accepted")
	}
}

func TestTaxonomySeededInRegistry(t *testing.T) {
	reg := newRegistry(t)
	schemes := reg.QM.FindObjects(rim.TypeClassificationScheme, "%")
	if len(schemes) != 5 {
		t.Fatalf("seeded schemes = %d", len(schemes))
	}
	nodes := reg.QM.FindObjects(rim.TypeClassificationNode, "%")
	if len(nodes) < 30 {
		t.Fatalf("seeded nodes = %d", len(nodes))
	}
}
