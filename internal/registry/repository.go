package registry

import (
	"errors"
	"fmt"

	"repro/internal/cataloger"
	"repro/internal/lcm"
	"repro/internal/rim"
	"repro/internal/store"
)

// The repository half of the registry/repository pairing (thesis §1.2,
// §2.2.3): ExtrinsicObject metadata lives in the registry, the artifact
// bytes live in the content store, and publication runs the content
// through validation and automatic cataloging (Table 1.1's WSDL features).

// catalogers is the registry's cataloger chain; it is created lazily so
// Registry's zero-setup tests don't pay for it.
func (r *Registry) catalogers() *cataloger.Registry {
	r.catOnce.Do(func() { r.cat = cataloger.NewRegistry() })
	return r.cat
}

// RegisterCataloger appends a custom validation/cataloging service.
func (r *Registry) RegisterCataloger(c cataloger.Cataloger) {
	r.catalogers().Register(c)
}

// SubmitRepositoryItem publishes one repository artifact: the content is
// validated and cataloged (slots extracted onto eo), the bytes stored
// under eo.ContentID, and the metadata submitted through the normal
// life-cycle path (authorization, audit, notification included).
func (r *Registry) SubmitRepositoryItem(ctx lcm.Context, eo *rim.ExtrinsicObject, content []byte) error {
	if eo == nil {
		return fmt.Errorf("registry: nil extrinsic object")
	}
	if eo.ContentID == "" {
		eo.ContentID = rim.NewUUID()
	}
	if err := r.catalogers().Catalog(eo, content); err != nil {
		return fmt.Errorf("registry: content rejected: %w", err)
	}
	if err := r.LCM.SubmitObjects(ctx, eo); err != nil {
		return err
	}
	// Through LCM, not the store, so the bytes are write-ahead-logged.
	return r.LCM.PutContent(eo.ContentID, content)
}

// GetRepositoryItem retrieves an artifact's metadata and bytes by object
// id.
func (r *Registry) GetRepositoryItem(id string) (*rim.ExtrinsicObject, []byte, error) {
	o, err := r.Store.Get(id)
	if err != nil {
		return nil, nil, err
	}
	eo, ok := o.(*rim.ExtrinsicObject)
	if !ok {
		return nil, nil, fmt.Errorf("registry: %s is not repository content", id)
	}
	content, err := r.Store.GetContent(eo.ContentID)
	if err != nil {
		return nil, nil, err
	}
	return eo, content, nil
}

// RemoveRepositoryItem deletes the artifact and its metadata.
func (r *Registry) RemoveRepositoryItem(ctx lcm.Context, id string) error {
	o, err := r.Store.Get(id)
	if err != nil {
		return err
	}
	eo, ok := o.(*rim.ExtrinsicObject)
	if !ok {
		return fmt.Errorf("registry: %s is not repository content", id)
	}
	if err := r.LCM.RemoveObjects(ctx, id); err != nil {
		return err
	}
	return r.LCM.DeleteContent(eo.ContentID)
}

// FindRepositoryItemsByWSDLNamespace is one of freebXML's predefined WSDL
// discovery queries ("Find all WSDLs that use a specified namespace or
// namespace pattern", Table 1.1). The pattern uses SQL LIKE syntax.
func (r *Registry) FindRepositoryItemsByWSDLNamespace(pattern string) []*rim.ExtrinsicObject {
	var out []*rim.ExtrinsicObject
	for _, o := range r.Store.ByType(rim.TypeExtrinsicObject) {
		eo, ok := o.(*rim.ExtrinsicObject)
		if !ok {
			continue
		}
		if ns, present := eo.SlotValue(cataloger.SlotWSDLTargetNamespace); present && store.MatchLike(ns, pattern) {
			out = append(out, eo)
		}
	}
	return out
}

// ErrNotRepositoryContent helps callers distinguish type mismatches.
var ErrNotRepositoryContent = errors.New("registry: not repository content")
