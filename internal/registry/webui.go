package registry

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
)

// A minimal read-only Web UI — the thin-browser counterpart of the
// freebXML Web UI the thesis drives in §3.4.4.1 (search form, object
// listings with details, and a live NodeState view). Publishing stays on
// the SOAP binding and the AccessRegistry API, exactly as the HTTP binding
// "only supports search queries" (§2.2.3).

var uiTemplate = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html><head><title>ebXML Registry</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 table { border-collapse: collapse; margin: 1em 0; }
 td, th { border: 1px solid #999; padding: 0.3em 0.7em; text-align: left; }
 th { background: #eee; }
 .muted { color: #666; font-size: 0.9em; }
</style></head><body>
<h1>ebXML Registry Repository</h1>
<form method="GET" action="/ui">
 <select name="kind">
  {{range .Kinds}}<option value="{{.}}" {{if eq . $.Kind}}selected{{end}}>{{.}}</option>{{end}}
 </select>
 <input type="text" name="name" value="{{.Pattern}}" placeholder="name pattern, %% = wildcard">
 <input type="submit" value="Search">
</form>
{{if .Objects}}
<h2>{{.Kind}} objects matching “{{.Pattern}}”</h2>
<table>
 <tr><th>Name</th><th>Description</th><th>Status</th><th>Version</th><th>ID</th></tr>
 {{range .Objects}}
 <tr><td>{{.Name}}</td><td>{{.Description}}</td><td>{{.Status}}</td><td>{{.Version}}</td>
     <td class="muted">{{.ID}}</td></tr>
 {{end}}
</table>
{{else}}<p class="muted">No matches.</p>{{end}}
<h2>NodeState</h2>
{{if .Nodes}}
<table>
 <tr><th>Host</th><th>Load</th><th>Free memory</th><th>Free swap</th><th>Updated</th><th>Failures</th><th>Health</th></tr>
 {{range .Nodes}}
 <tr><td>{{.Host}}</td><td>{{printf "%.2f" .Load}}</td><td>{{.MemoryB}}</td>
     <td>{{.SwapB}}</td><td>{{.Updated}}</td><td>{{.Failures}}</td><td>{{.Health}}</td></tr>
 {{end}}
</table>
{{else}}<p class="muted">No NodeStatus data collected yet.</p>{{end}}
<h2>Collector health</h2>
{{if .Health}}
<table>
 <tr><th>Host</th><th>Health</th><th>Failures</th><th>Breaker</th><th>Consecutive</th><th>Trips</th><th>Next probe</th></tr>
 {{range .Health}}
 <tr><td>{{.Host}}</td><td>{{.Health}}</td><td>{{.Failures}}</td><td>{{.Breaker}}</td>
     <td>{{.Consecutive}}</td><td>{{.Trips}}</td><td>{{.NextProbe}}</td></tr>
 {{end}}
</table>
{{else}}<p class="muted">No collector health data yet.</p>{{end}}
<h2>Discovery traces</h2>
{{if .Traces}}
<table>
 <tr><th>Trace</th><th>Start</th><th>Total µs</th><th>Spans</th><th>Attributes</th></tr>
 {{range .Traces}}
 <tr><td class="muted">{{.ID}}</td><td>{{.Start}}</td><td>{{printf "%.1f" .TotalUs}}</td>
     <td>{{.Spans}}</td><td class="muted">{{.Attrs}}</td></tr>
 {{end}}
</table>
<p class="muted">{{.TraceLine}} Full spans at <a href="/registry/traces">/registry/traces</a>.</p>
{{else}}<p class="muted">{{.TraceLine}}</p>{{end}}
<p class="muted">{{.FaultLine}}</p>
<p class="muted">{{.Count}} objects in the registry. Publishing requires the SOAP binding or the AccessRegistry API.</p>
</body></html>`))

type uiRow struct {
	Name, Description, Status, Version, ID string
}

// uiHealthRow is one pre-rendered row of the collector-health table.
type uiHealthRow struct {
	Host, Health, Breaker, NextProbe string
	Failures, Consecutive, Trips     int
}

// uiTraceRow is one pre-rendered row of the discovery-traces panel: the
// span sequence is flattened to "name=µs" pairs so the template stays
// dumb.
type uiTraceRow struct {
	ID, Start, Spans, Attrs string
	TotalUs                 float64
}

type uiData struct {
	Kinds     []string
	Kind      string
	Pattern   string
	Objects   []uiRow
	Nodes     interface{}
	Health    []uiHealthRow
	Traces    []uiTraceRow
	TraceLine string
	FaultLine string
	Count     int
}

// ordinal renders small sampling rates readably ("every 1st/2nd/Nth").
func ordinal(n int) string {
	switch n {
	case 1:
		return "1st"
	case 2:
		return "2nd"
	case 3:
		return "3rd"
	default:
		return fmt.Sprintf("%dth", n)
	}
}

var uiKinds = []string{
	"Organization", "Service", "Association", "User",
	"ClassificationScheme", "ClassificationNode", "RegistryPackage",
	"ExternalLink", "AdhocQuery",
}

func (r *Registry) handleUI(w http.ResponseWriter, req *http.Request) {
	kind := req.URL.Query().Get("kind")
	if kind == "" {
		kind = "Organization"
	}
	pattern := req.URL.Query().Get("name")
	if pattern == "" {
		pattern = "%"
	}
	t, err := kindToType(kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stats := r.Collector.FaultStats()
	data := uiData{
		Kinds:   uiKinds,
		Kind:    kind,
		Pattern: pattern,
		Nodes:   r.Store.NodeState().Rows(),
		Count:   r.Store.Len(),
		FaultLine: fmt.Sprintf("Collector: %d sweeps, %d errors, %d timeouts, %d retries, %d breaker skips.",
			stats.Sweeps, stats.Errs, stats.Timeouts, stats.Retries, stats.Skipped),
	}
	if n := r.Tracer.Sample(); n > 0 {
		data.TraceLine = fmt.Sprintf("Tracing every %s discovery request; %d sampled so far.",
			ordinal(n), r.Tracer.SampledTotal())
	} else {
		data.TraceLine = "Trace sampling disabled (start the server with -trace-sample N to enable)."
	}
	for _, t := range r.Tracer.Recent(10) {
		e := t.Export()
		spans := make([]string, 0, len(e.Spans))
		for _, s := range e.Spans {
			spans = append(spans, fmt.Sprintf("%s=%.1fµs", s.Name, s.DurationUs))
		}
		attrs := make([]string, 0, len(e.Attrs))
		for _, a := range e.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		data.Traces = append(data.Traces, uiTraceRow{
			ID:      e.ID,
			Start:   e.Start.UTC().Format("15:04:05.000"),
			TotalUs: e.DurationUs,
			Spans:   strings.Join(spans, " "),
			Attrs:   strings.Join(attrs, " "),
		})
	}
	for _, rep := range r.Collector.HealthSnapshot() {
		row := uiHealthRow{
			Host:        rep.Host,
			Health:      rep.Health.String(),
			Breaker:     rep.Breaker.String(),
			Failures:    rep.Failures,
			Consecutive: rep.Consecutive,
			Trips:       rep.Trips,
			NextProbe:   "-",
		}
		if !rep.NextProbe.IsZero() {
			row.NextProbe = rep.NextProbe.UTC().Format("2006-01-02 15:04:05")
		}
		data.Health = append(data.Health, row)
	}
	for _, o := range r.QM.FindObjects(t, pattern) {
		b := o.Base()
		desc := b.Description.String()
		if len(desc) > 120 {
			desc = desc[:117] + "..."
		}
		data.Objects = append(data.Objects, uiRow{
			Name:        b.Name.String(),
			Description: desc,
			Status:      string(b.Status),
			Version:     b.Version.VersionName,
			ID:          b.ID,
		})
	}
	sort.Slice(data.Objects, func(i, j int) bool {
		return strings.ToLower(data.Objects[i].Name) < strings.ToLower(data.Objects[j].Name)
	})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := uiTemplate.Execute(w, data); err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}
