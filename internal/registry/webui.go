package registry

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
)

// A minimal read-only Web UI — the thin-browser counterpart of the
// freebXML Web UI the thesis drives in §3.4.4.1 (search form, object
// listings with details, and a live NodeState view). Publishing stays on
// the SOAP binding and the AccessRegistry API, exactly as the HTTP binding
// "only supports search queries" (§2.2.3).

var uiTemplate = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html><head><title>ebXML Registry</title>
<style>
 body { font-family: sans-serif; margin: 2em; }
 table { border-collapse: collapse; margin: 1em 0; }
 td, th { border: 1px solid #999; padding: 0.3em 0.7em; text-align: left; }
 th { background: #eee; }
 .muted { color: #666; font-size: 0.9em; }
</style></head><body>
<h1>ebXML Registry Repository</h1>
<form method="GET" action="/ui">
 <select name="kind">
  {{range .Kinds}}<option value="{{.}}" {{if eq . $.Kind}}selected{{end}}>{{.}}</option>{{end}}
 </select>
 <input type="text" name="name" value="{{.Pattern}}" placeholder="name pattern, %% = wildcard">
 <input type="submit" value="Search">
</form>
{{if .Objects}}
<h2>{{.Kind}} objects matching “{{.Pattern}}”</h2>
<table>
 <tr><th>Name</th><th>Description</th><th>Status</th><th>Version</th><th>ID</th></tr>
 {{range .Objects}}
 <tr><td>{{.Name}}</td><td>{{.Description}}</td><td>{{.Status}}</td><td>{{.Version}}</td>
     <td class="muted">{{.ID}}</td></tr>
 {{end}}
</table>
{{else}}<p class="muted">No matches.</p>{{end}}
<h2>NodeState</h2>
{{if .Nodes}}
<table>
 <tr><th>Host</th><th>Load</th><th>Free memory</th><th>Free swap</th><th>Updated</th><th>Failures</th></tr>
 {{range .Nodes}}
 <tr><td>{{.Host}}</td><td>{{printf "%.2f" .Load}}</td><td>{{.MemoryB}}</td>
     <td>{{.SwapB}}</td><td>{{.Updated}}</td><td>{{.Failures}}</td></tr>
 {{end}}
</table>
{{else}}<p class="muted">No NodeStatus data collected yet.</p>{{end}}
<p class="muted">{{.Count}} objects in the registry. Publishing requires the SOAP binding or the AccessRegistry API.</p>
</body></html>`))

type uiRow struct {
	Name, Description, Status, Version, ID string
}

type uiData struct {
	Kinds   []string
	Kind    string
	Pattern string
	Objects []uiRow
	Nodes   interface{}
	Count   int
}

var uiKinds = []string{
	"Organization", "Service", "Association", "User",
	"ClassificationScheme", "ClassificationNode", "RegistryPackage",
	"ExternalLink", "AdhocQuery",
}

func (r *Registry) handleUI(w http.ResponseWriter, req *http.Request) {
	kind := req.URL.Query().Get("kind")
	if kind == "" {
		kind = "Organization"
	}
	pattern := req.URL.Query().Get("name")
	if pattern == "" {
		pattern = "%"
	}
	t, err := kindToType(kind)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data := uiData{
		Kinds:   uiKinds,
		Kind:    kind,
		Pattern: pattern,
		Nodes:   r.Store.NodeState().Rows(),
		Count:   r.Store.Len(),
	}
	for _, o := range r.QM.FindObjects(t, pattern) {
		b := o.Base()
		desc := b.Description.String()
		if len(desc) > 120 {
			desc = desc[:117] + "..."
		}
		data.Objects = append(data.Objects, uiRow{
			Name:        b.Name.String(),
			Description: desc,
			Status:      string(b.Status),
			Version:     b.Version.VersionName,
			ID:          b.ID,
		})
	}
	sort.Slice(data.Objects, func(i, j int) bool {
		return strings.ToLower(data.Objects[i].Name) < strings.ToLower(data.Objects[j].Name)
	})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := uiTemplate.Execute(w, data); err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}
