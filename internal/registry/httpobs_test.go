package registry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/nodestatus"
	"repro/internal/obs"
	"repro/internal/rim"
	"repro/internal/simclock"
)

// newObservedRegistry builds a registry over a simulated 4-host cluster
// with tracing on (every request sampled), collects one sweep, and
// serves it over httptest — the smallest deployment where every metric
// family has data behind it.
func newObservedRegistry(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	clk := simclock.NewManual(t0)
	cluster := hostsim.NewCluster()
	ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
	svc := rim.NewService("Adder",
		`<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
	for _, name := range []string{"h00.sdsu.edu", "h01.sdsu.edu", "h02.sdsu.edu", "h03.sdsu.edu"} {
		cluster.Add(hostsim.NewHost(hostsim.Config{
			Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30,
		}, t0))
		ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
		svc.AddBinding("http://" + name + ":8080/Adder/addService")
	}
	reg, err := New(Config{
		Clock:          clk,
		Policy:         core.PolicyFilter,
		SnapshotMaxAge: 25 * time.Second,
		Invoker:        nodestatus.LocalInvoker{Cluster: cluster, Clock: clk},
		Breaker:        &breaker.Config{Threshold: 3, BaseBackoff: 50 * time.Second, MaxBackoff: 10 * time.Minute},
		TraceSample:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), ns, svc); err != nil {
		t.Fatal(err)
	}
	reg.Collector.CollectOnce()
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)
	return reg, srv
}

func TestHealthEndpoint(t *testing.T) {
	_, srv := newObservedRegistry(t)
	resp, err := srv.Client().Get(srv.URL + "/registry/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	var v struct {
		Stats struct {
			Sweeps int
			Errs   int
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("health is not JSON: %v", err)
	}
	if v.Stats.Sweeps != 1 || v.Stats.Errs != 0 {
		t.Fatalf("health stats = %+v, want 1 sweep and 0 errors", v.Stats)
	}
}

// TestMetricsExpositionRoundTrip scrapes /registry/metrics after a few
// discoveries and re-parses it through the strict exposition parser: a
// malformed document, a missing family, or an implausible value fails.
func TestMetricsExpositionRoundTrip(t *testing.T) {
	_, srv := newObservedRegistry(t)
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=Adder")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bindings status = %d", resp.StatusCode)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/registry/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", got)
	}
	scrape, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not round-trip: %v", err)
	}

	for _, fam := range []string{
		"registry_objects",
		"registry_constraint_cache_hits_total",
		"registry_constraint_cache_misses_total",
		"registry_constraint_cache_invalidations_total",
		"registry_constraint_cache_entries",
		"registry_collector_sweeps_total",
		"registry_collector_errors_total",
		"registry_collector_timeouts_total",
		"registry_collector_retries_total",
		"registry_collector_breaker_skips_total",
		"registry_breaker_state",
		"registry_nodestate_rows",
		"registry_node_load",
		"registry_node_health",
		"registry_nodestate_snapshot_generation",
		"registry_nodestate_snapshot_age_seconds",
		"registry_discovery_total",
		"registry_discovery_errors_total",
		"registry_discovery_fallback_total",
		"registry_discovery_degraded_total",
		"registry_discovery_verdicts_total",
		"registry_discovery_latency_seconds",
		"registry_traces_sampled_total",
		"registry_trace_sample_rate",
	} {
		if _, ok := scrape.Families[fam]; !ok {
			t.Errorf("family %s missing from scrape", fam)
		}
	}

	check := func(name string, labels map[string]string, want float64) {
		t.Helper()
		got, ok := scrape.Value(name, labels)
		if !ok {
			t.Errorf("%s%v missing", name, labels)
			return
		}
		if got != want {
			t.Errorf("%s%v = %v, want %v", name, labels, got, want)
		}
	}
	// Three discoveries of one service: first parses the constraint,
	// the other two hit the cache.
	check("registry_discovery_total", nil, 3)
	check("registry_constraint_cache_misses_total", nil, 1)
	check("registry_constraint_cache_hits_total", nil, 2)
	check("registry_collector_sweeps_total", nil, 1)
	check("registry_nodestate_rows", nil, 4)
	check("registry_breaker_state", map[string]string{"host": "h02.sdsu.edu"}, 0)
	check("registry_discovery_latency_seconds_count", nil, 3)
	check("registry_traces_sampled_total", nil, 3)
	check("registry_trace_sample_rate", nil, 1)
	if v, ok := scrape.Value("registry_node_load", map[string]string{"host": "h00.sdsu.edu"}); !ok || v < 0 {
		t.Errorf("registry_node_load{host=h00} = %v (ok=%v), want >= 0", v, ok)
	}
}

// TestDiscoveryTraceRetrievable is the tentpole acceptance check: the id
// echoed in X-Registry-Trace must be fetchable from /registry/traces
// with the discovery span sequence intact.
func TestDiscoveryTraceRetrievable(t *testing.T) {
	_, srv := newObservedRegistry(t)
	resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=Adder")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Registry-Trace")
	if id == "" {
		t.Fatal("no X-Registry-Trace header with sampling on")
	}

	tr, err := srv.Client().Get(srv.URL + "/registry/traces?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("traces?id=%s status = %d", id, tr.StatusCode)
	}
	var exp obs.TraceExport
	if err := json.NewDecoder(tr.Body).Decode(&exp); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	if exp.ID != id {
		t.Fatalf("trace id = %s, want %s", exp.ID, id)
	}
	got := make(map[string]bool, len(exp.Spans))
	for _, s := range exp.Spans {
		got[s.Name] = true
	}
	for _, want := range []string{"view", "constraint", "snapshot", "evaluate", "arrange"} {
		if !got[want] {
			t.Errorf("trace missing span %q (spans %v)", want, exp.Spans)
		}
	}

	// The list endpoint must carry the same trace.
	list, err := srv.Client().Get(srv.URL + "/registry/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var v struct {
		SampleRate int               `json:"sampleRate"`
		Traces     []obs.TraceExport `json:"traces"`
	}
	if err := json.NewDecoder(list.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SampleRate != 1 {
		t.Errorf("sampleRate = %d, want 1", v.SampleRate)
	}
	found := false
	for _, e := range v.Traces {
		found = found || e.ID == id
	}
	if !found {
		t.Errorf("trace %s not in /registry/traces list", id)
	}

	if missing, err := srv.Client().Get(srv.URL + "/registry/traces?id=deadbeef-000000"); err == nil {
		missing.Body.Close()
		if missing.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace id status = %d, want 404", missing.StatusCode)
		}
	} else {
		t.Fatal(err)
	}
}

// TestTracingDisabledByDefault: with no TraceSample configured, discovery
// responses carry no trace header and the ring stays empty — tracing is
// strictly opt-in.
func TestTracingDisabledByDefault(t *testing.T) {
	reg := newRegistry(t)
	svc := rim.NewService("Plain", "")
	svc.AddBinding("http://h.example/x")
	if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/registry/bindings?service=Plain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bindings status = %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Registry-Trace"); h != "" {
		t.Fatalf("X-Registry-Trace = %q with sampling off", h)
	}
	list, err := srv.Client().Get(srv.URL + "/registry/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var v struct {
		SampleRate int               `json:"sampleRate"`
		Traces     []obs.TraceExport `json:"traces"`
	}
	if err := json.NewDecoder(list.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SampleRate != 0 || len(v.Traces) != 0 {
		t.Fatalf("sampleRate=%d traces=%d, want 0 and 0", v.SampleRate, len(v.Traces))
	}
}

// TestPprofOptIn: /debug/pprof/ exists only when Config.Pprof is set.
func TestPprofOptIn(t *testing.T) {
	off := newRegistry(t)
	srvOff := httptest.NewServer(off.Handler())
	defer srvOff.Close()
	resp, err := srvOff.Client().Get(srvOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: status %d", resp.StatusCode)
	}

	on, err := New(Config{Clock: simclock.NewManual(t0), Policy: core.PolicyFilter, Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	srvOn := httptest.NewServer(on.Handler())
	defer srvOn.Close()
	resp, err = srvOn.Client().Get(srvOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d with -pprof", resp.StatusCode)
	}
}
