package router

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func okHandler(tag string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(tag))
	})
}

func get(t *testing.T, r *Router, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestExactMatch(t *testing.T) {
	r := New(Config{})
	r.Handle("/registry/bindings", okHandler("bindings"))
	r.HandleFunc("/registry/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("health"))
	})
	r.Freeze()

	if rec := get(t, r, "/registry/bindings"); rec.Body.String() != "bindings" {
		t.Fatalf("bindings route: got %q", rec.Body.String())
	}
	if rec := get(t, r, "/registry/health"); rec.Body.String() != "health" {
		t.Fatalf("health route: got %q", rec.Body.String())
	}
}

func TestExactMatchDoesNotCoverSubpaths(t *testing.T) {
	r := New(Config{})
	r.Handle("/registry/bindings", okHandler("bindings"))
	r.Freeze()

	for _, path := range []string{"/registry/bindings/", "/registry/bindings/x", "/registry", "/"} {
		if rec := get(t, r, path); rec.Code != http.StatusNotFound {
			t.Fatalf("%s: code = %d, want 404", path, rec.Code)
		}
	}
	if got := r.NotFound.Value(); got != 4 {
		t.Fatalf("NotFound = %d, want 4", got)
	}
}

func TestPrefixMatchLongestWins(t *testing.T) {
	r := New(Config{})
	r.HandlePrefix("/debug/", okHandler("debug"))
	r.HandlePrefixFunc("/debug/pprof/", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("pprof"))
	})
	r.Handle("/debug/pprof/cmdline", okHandler("cmdline"))
	r.Freeze()

	if rec := get(t, r, "/debug/pprof/heap"); rec.Body.String() != "pprof" {
		t.Fatalf("pprof subtree: got %q", rec.Body.String())
	}
	if rec := get(t, r, "/debug/vars"); rec.Body.String() != "debug" {
		t.Fatalf("debug subtree: got %q", rec.Body.String())
	}
	// Exact match beats any prefix.
	if rec := get(t, r, "/debug/pprof/cmdline"); rec.Body.String() != "cmdline" {
		t.Fatalf("exact over prefix: got %q", rec.Body.String())
	}
}

func TestPathTooLong(t *testing.T) {
	r := New(Config{MaxPathLength: 32})
	r.Handle("/ok", okHandler("ok"))
	r.Freeze()

	rec := get(t, r, "/"+strings.Repeat("a", 64))
	if rec.Code != http.StatusRequestURITooLong {
		t.Fatalf("code = %d, want 414", rec.Code)
	}
	if r.TooLong.Value() != 1 {
		t.Fatalf("TooLong = %d, want 1", r.TooLong.Value())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestPathTooDeep(t *testing.T) {
	r := New(Config{MaxDepth: 3})
	r.Handle("/a/b/c", okHandler("ok"))
	r.Freeze()

	if rec := get(t, r, "/a/b/c"); rec.Code != http.StatusOK {
		t.Fatalf("at-limit path: code = %d", rec.Code)
	}
	rec := get(t, r, "/a/b/c/d")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d, want 400", rec.Code)
	}
	if r.TooDeep.Value() != 1 {
		t.Fatalf("TooDeep = %d, want 1", r.TooDeep.Value())
	}
}

func TestDepth(t *testing.T) {
	cases := map[string]int{
		"/":        0,
		"":         0,
		"/a":       1,
		"/a/":      1,
		"/a/b":     2,
		"/a/b/c/d": 4,
		"//":       1,
	}
	for path, want := range cases {
		if got := depth(path); got != want {
			t.Errorf("depth(%q) = %d, want %d", path, got, want)
		}
	}
}

func TestFreezeDiscipline(t *testing.T) {
	r := New(Config{})
	r.Handle("/x", okHandler("x"))

	mustPanic(t, "serve before freeze", func() {
		r.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/x", nil))
	})
	r.Freeze()
	if !r.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	mustPanic(t, "handle after freeze", func() { r.Handle("/y", okHandler("y")) })
	mustPanic(t, "double freeze", func() { r.Freeze() })
}

func TestRegistrationPanics(t *testing.T) {
	r := New(Config{})
	r.Handle("/dup", okHandler("a"))
	mustPanic(t, "duplicate route", func() { r.Handle("/dup", okHandler("b")) })
	mustPanic(t, "bad pattern", func() { r.Handle("no-slash", okHandler("c")) })
	mustPanic(t, "nil handler", func() { r.Handle("/nil", nil) })
	r.HandlePrefix("/p/", okHandler("p"))
	mustPanic(t, "duplicate prefix", func() { r.HandlePrefix("/p/", okHandler("q")) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func BenchmarkRouterDispatch(b *testing.B) {
	r := New(Config{})
	noop := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	r.Handle("/registry/bindings", noop)
	r.Handle("/registry/health", noop)
	r.HandlePrefix("/debug/pprof/", noop)
	r.Freeze()

	req := httptest.NewRequest(http.MethodGet, "/registry/bindings", nil)
	w := nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ServeHTTP(w, req)
	}
}

type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopResponseWriter) WriteHeader(int)             {}
