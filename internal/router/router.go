// Package router is the registry's frozen-mode static router. Routes are
// registered once at boot and then frozen into an immutable perfect-match
// table: dispatch is one map read (Go map lookups allocate nothing) plus a
// short longest-prefix scan for the few subtree routes (/debug/pprof/),
// with no per-request pattern matching, no locks, and no allocation.
//
// Freezing also hardens the edge: requests whose path exceeds
// MaxPathLength answer 414 and paths nested deeper than MaxDepth answer
// 400, both from preserialized bodies, before any handler runs. Unknown
// paths get a preserialized 404. The three reject classes are counted so
// the serving edge's exposition can report them.
//
// The router deliberately does not reproduce net/http.ServeMux's path
// cleaning and trailing-slash redirects: the registry's surface is a
// fixed set of canonical paths, and a non-canonical request is simply not
// one of them.
package router

import (
	"errors"
	"net/http"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// errNotFrozen is predeclared so the hot-path nil check panics without
// boxing a string into the interface argument on every build of the
// function's stack frame.
var errNotFrozen = errors.New("router: ServeHTTP before Freeze")

// Defaults for the request limits when Config leaves them zero. The
// registry's deepest route (/debug/pprof/cmdline) has three segments and
// its longest practical query-bearing path is far under a kilobyte.
const (
	DefaultMaxPathLength = 1024
	DefaultMaxDepth      = 8
)

// Config tunes a Router's request limits.
type Config struct {
	// MaxPathLength caps the request path in bytes; longer paths answer
	// 414 URI Too Long. 0 means DefaultMaxPathLength.
	MaxPathLength int
	// MaxDepth caps the number of path segments; deeper paths answer 400.
	// 0 means DefaultMaxDepth.
	MaxDepth int
}

// prefixRoute is one subtree registration, matched after the static table.
type prefixRoute struct {
	prefix  string
	handler http.Handler
}

// Router dispatches requests against a frozen static-path table. Register
// every route from the boot goroutine, call Freeze, then serve; Handle
// after Freeze and ServeHTTP before it both panic. The frozen state is
// immutable, so concurrent ServeHTTP calls need no synchronisation.
type Router struct {
	maxPath  int
	maxDepth int
	frozen   bool
	static   map[string]http.Handler
	prefixes []prefixRoute

	// Reject counters, readable at any time (e.g. by a metrics scrape).
	TooLong  metrics.Counter
	TooDeep  metrics.Counter
	NotFound metrics.Counter

	// Preserialized reject responses: the reject paths must not allocate.
	textContentType []string
	noSniff         []string
	tooLongBody     []byte
	tooDeepBody     []byte
	notFoundBody    []byte
}

// New creates an unfrozen router with the given limits.
func New(cfg Config) *Router {
	if cfg.MaxPathLength <= 0 {
		cfg.MaxPathLength = DefaultMaxPathLength
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	return &Router{
		maxPath:         cfg.MaxPathLength,
		maxDepth:        cfg.MaxDepth,
		static:          make(map[string]http.Handler),
		textContentType: []string{"text/plain; charset=utf-8"},
		noSniff:         []string{"nosniff"},
		tooLongBody:     []byte("request path exceeds the configured limit\n"),
		tooDeepBody:     []byte("request path nested deeper than the configured limit\n"),
		notFoundBody:    []byte("404 page not found\n"),
	}
}

// Handle registers an exact-match route. The pattern must start with "/";
// duplicate and post-Freeze registrations panic — route wiring bugs are
// boot-time bugs.
func (r *Router) Handle(pattern string, h http.Handler) {
	r.check(pattern, h)
	if _, dup := r.static[pattern]; dup {
		panic("router: duplicate route " + pattern)
	}
	r.static[pattern] = h
}

// HandleFunc registers an exact-match route for a handler function.
func (r *Router) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	r.Handle(pattern, http.HandlerFunc(h))
}

// HandlePrefix registers a subtree route: every path starting with prefix
// that has no exact-match entry dispatches to h. Longest prefix wins.
func (r *Router) HandlePrefix(prefix string, h http.Handler) {
	r.check(prefix, h)
	for _, p := range r.prefixes {
		if p.prefix == prefix {
			panic("router: duplicate prefix route " + prefix)
		}
	}
	r.prefixes = append(r.prefixes, prefixRoute{prefix: prefix, handler: h})
}

// HandlePrefixFunc registers a subtree route for a handler function.
func (r *Router) HandlePrefixFunc(prefix string, h func(http.ResponseWriter, *http.Request)) {
	r.HandlePrefix(prefix, http.HandlerFunc(h))
}

func (r *Router) check(pattern string, h http.Handler) {
	if r.frozen {
		panic("router: Handle after Freeze (routes are fixed at boot)")
	}
	if pattern == "" || pattern[0] != '/' {
		panic("router: pattern must start with /: " + pattern)
	}
	if h == nil {
		panic("router: nil handler for " + pattern)
	}
}

// Freeze makes the route table immutable and the router servable. Called
// once, after the last registration, before the first request.
func (r *Router) Freeze() {
	if r.frozen {
		panic("router: Freeze called twice")
	}
	// Longest prefix first, so the most specific subtree wins the scan.
	sort.Slice(r.prefixes, func(i, j int) bool {
		return len(r.prefixes[i].prefix) > len(r.prefixes[j].prefix)
	})
	r.frozen = true
}

// Frozen reports whether Freeze has run.
func (r *Router) Frozen() bool { return r.frozen }

// ServeHTTP dispatches against the frozen table.
//
//repolint:hotpath frozen-table dispatch runs on every request
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if !r.frozen {
		panic(errNotFrozen)
	}
	path := req.URL.Path
	if len(path) > r.maxPath {
		r.TooLong.Inc()
		r.reject(w, http.StatusRequestURITooLong, r.tooLongBody)
		return
	}
	if depth(path) > r.maxDepth {
		r.TooDeep.Inc()
		r.reject(w, http.StatusBadRequest, r.tooDeepBody)
		return
	}
	if h, ok := r.static[path]; ok {
		h.ServeHTTP(w, req)
		return
	}
	for i := range r.prefixes {
		if strings.HasPrefix(path, r.prefixes[i].prefix) {
			r.prefixes[i].handler.ServeHTTP(w, req)
			return
		}
	}
	r.NotFound.Inc()
	r.reject(w, http.StatusNotFound, r.notFoundBody)
}

// reject writes a preserialized error response with shared header slices,
// so the reject paths stay allocation-free under a scanner or flood.
//
//repolint:hotpath reject paths are the hot path under abusive traffic
func (r *Router) reject(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h["Content-Type"] = r.textContentType
	h["X-Content-Type-Options"] = r.noSniff
	w.WriteHeader(status)
	w.Write(body)
}

// depth counts the path's segments: "/a/b" is 2, "/" is 0. A trailing
// slash opens a segment only if something follows it, so "/a/" is 1.
//
//repolint:hotpath runs on every request before dispatch
func depth(path string) int {
	n := 0
	for i := 0; i < len(path); i++ {
		if path[i] == '/' && i+1 < len(path) {
			n++
		}
	}
	return n
}
