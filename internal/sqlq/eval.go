package sqlq

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a cell value: string, float64, bool, or nil (SQL NULL).
type Value interface{}

// Row maps lower-cased column names to values.
type Row map[string]Value

// Table is a readable logical table.
type Table interface {
	// Columns lists the table's column names (canonical casing).
	Columns() []string
	// Rows returns the table's rows. Implementations may build them
	// lazily per call.
	Rows() []Row
}

// Catalog resolves table names (case-insensitively) to tables.
type Catalog interface {
	Table(name string) (Table, error)
}

// ResultSet is a query result.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
	// Total is the number of matching rows before LIMIT/OFFSET — the
	// totalResultsCount of an AdhocQueryResponse's iterative parameters.
	Total int
}

// MemTable is a Table backed by slices, convenient for fixed catalogs and
// tests.
type MemTable struct {
	Cols []string
	Data []Row
}

// Columns implements Table.
func (m *MemTable) Columns() []string { return m.Cols }

// Rows implements Table.
func (m *MemTable) Rows() []Row { return m.Data }

// MapCatalog is a Catalog over a name->Table map.
type MapCatalog map[string]Table

// Table implements Catalog with case-insensitive lookup.
func (c MapCatalog) Table(name string) (Table, error) {
	if t, ok := c[name]; ok {
		return t, nil
	}
	for k, t := range c {
		if strings.EqualFold(k, name) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("sqlq: unknown table %q", name)
}

// Exec parses and runs a query against the catalog with the given named
// parameters (may be nil).
func Exec(catalog Catalog, query string, params map[string]Value) (*ResultSet, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Run(catalog, stmt, params)
}

// Run executes a parsed statement.
func Run(catalog Catalog, stmt *SelectStmt, params map[string]Value) (*ResultSet, error) {
	tbl, err := catalog.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	cols := tbl.Columns()
	colSet := make(map[string]bool, len(cols))
	for _, c := range cols {
		colSet[strings.ToLower(c)] = true
	}

	resolve := func(ref ColRef) (string, error) {
		if ref.Qualifier != "" && !strings.EqualFold(ref.Qualifier, stmt.Alias) && !strings.EqualFold(ref.Qualifier, stmt.Table) {
			return "", fmt.Errorf("sqlq: unknown qualifier %q (table alias is %q)", ref.Qualifier, stmt.Alias)
		}
		key := strings.ToLower(ref.Name)
		if !colSet[key] {
			return "", fmt.Errorf("sqlq: table %s has no column %q", stmt.Table, ref.Name)
		}
		return key, nil
	}

	// Resolve the projection.
	var outCols []string
	var outKeys []string
	if stmt.Columns == nil {
		outCols = append(outCols, cols...)
		for _, c := range cols {
			outKeys = append(outKeys, strings.ToLower(c))
		}
	} else {
		for _, ref := range stmt.Columns {
			key, err := resolve(ref)
			if err != nil {
				return nil, err
			}
			outKeys = append(outKeys, key)
			outCols = append(outCols, ref.Name)
		}
	}

	// Filter.
	var matched []Row
	for _, row := range tbl.Rows() {
		if stmt.Where != nil {
			ok, err := evalBool(stmt.Where, row, params, resolve)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		matched = append(matched, row)
	}

	// Order.
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, k := range stmt.OrderBy {
			key, err := resolve(k.Col)
			if err != nil {
				return nil, err
			}
			keys[i] = key
		}
		sort.SliceStable(matched, func(i, j int) bool {
			for k, ord := range stmt.OrderBy {
				c := compareValues(matched[i][keys[k]], matched[j][keys[k]])
				if c == 0 {
					continue
				}
				if ord.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// Project (with optional DISTINCT).
	rs := &ResultSet{Columns: outCols}
	seen := make(map[string]bool)
	var projected [][]Value
	for _, row := range matched {
		out := make([]Value, len(outKeys))
		for i, k := range outKeys {
			out[i] = row[k]
		}
		if stmt.Distinct {
			sig := fmt.Sprintf("%v", out)
			if seen[sig] {
				continue
			}
			seen[sig] = true
		}
		projected = append(projected, out)
	}
	rs.Total = len(projected)

	// Slice by OFFSET/LIMIT.
	start := stmt.Offset
	if start > len(projected) {
		start = len(projected)
	}
	end := len(projected)
	if stmt.Limit >= 0 && start+stmt.Limit < end {
		end = start + stmt.Limit
	}
	rs.Rows = projected[start:end]
	return rs, nil
}

type resolver func(ColRef) (string, error)

// evalValue computes a value expression for a row.
func evalValue(e Expr, row Row, params map[string]Value, resolve resolver) (Value, error) {
	switch v := e.(type) {
	case ColRef:
		key, err := resolve(v)
		if err != nil {
			return nil, err
		}
		return row[key], nil
	case Literal:
		switch {
		case v.IsNul:
			return nil, nil
		case v.Str != nil:
			return *v.Str, nil
		case v.Num != nil:
			return *v.Num, nil
		}
		return nil, nil
	case Param:
		val, ok := params[v.Name]
		if !ok {
			return nil, fmt.Errorf("sqlq: unbound parameter $%s", v.Name)
		}
		return val, nil
	default:
		return nil, fmt.Errorf("sqlq: %T is not a value expression", e)
	}
}

// evalBool computes a boolean expression for a row. SQL three-valued logic
// is collapsed: comparisons with NULL are false.
func evalBool(e Expr, row Row, params map[string]Value, resolve resolver) (bool, error) {
	switch v := e.(type) {
	case BinaryExpr:
		l, err := evalBool(v.L, row, params, resolve)
		if err != nil {
			return false, err
		}
		// Short-circuit.
		if v.Op == "AND" && !l {
			return false, nil
		}
		if v.Op == "OR" && l {
			return true, nil
		}
		return evalBool(v.R, row, params, resolve)
	case NotExpr:
		b, err := evalBool(v.E, row, params, resolve)
		return !b, err
	case Comparison:
		l, err := evalValue(v.L, row, params, resolve)
		if err != nil {
			return false, err
		}
		r, err := evalValue(v.R, row, params, resolve)
		if err != nil {
			return false, err
		}
		if l == nil || r == nil {
			return false, nil
		}
		c := compareValues(l, r)
		switch v.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
		return false, fmt.Errorf("sqlq: bad comparison op %q", v.Op)
	case LikeExpr:
		l, err := evalValue(v.Col, row, params, resolve)
		if err != nil {
			return false, err
		}
		p, err := evalValue(v.Pattern, row, params, resolve)
		if err != nil {
			return false, err
		}
		ls, lok := asString(l)
		ps, pok := asString(p)
		if !lok || !pok {
			return false, nil
		}
		return likePatternMatch(ls, ps) != v.Negate, nil
	case InExpr:
		l, err := evalValue(v.Col, row, params, resolve)
		if err != nil {
			return false, err
		}
		if l == nil {
			return false, nil
		}
		for _, ve := range v.Values {
			r, err := evalValue(ve, row, params, resolve)
			if err != nil {
				return false, err
			}
			if r != nil && compareValues(l, r) == 0 {
				return !v.Negate, nil
			}
		}
		return v.Negate, nil
	case IsNullExpr:
		l, err := evalValue(v.Col, row, params, resolve)
		if err != nil {
			return false, err
		}
		return (l == nil) != v.Negate, nil
	default:
		return false, fmt.Errorf("sqlq: %T is not a boolean expression", e)
	}
}

// compareValues orders two non-nil values: numbers numerically when both
// coerce, otherwise strings case-insensitively. nil sorts first.
func compareValues(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	if fa, ok := asNumber(a); ok {
		if fb, ok := asNumber(b); ok {
			switch {
			case fa < fb:
				return -1
			case fa > fb:
				return 1
			default:
				return 0
			}
		}
	}
	sa, _ := asString(a)
	sb, _ := asString(b)
	return strings.Compare(strings.ToLower(sa), strings.ToLower(sb))
}

func asNumber(v Value) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case bool:
		if n {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

func asString(v Value) (string, bool) {
	switch s := v.(type) {
	case string:
		return s, true
	case float64:
		return fmt.Sprintf("%g", s), true
	case int:
		return fmt.Sprintf("%d", s), true
	case int64:
		return fmt.Sprintf("%d", s), true
	case bool:
		return fmt.Sprintf("%t", s), true
	default:
		return "", false
	}
}

// likePatternMatch applies case-insensitive SQL LIKE with % and _.
func likePatternMatch(s, p string) bool {
	s, p = strings.ToLower(s), strings.ToLower(p)
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
