package sqlq

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestComparisonAgainstNaiveEvaluator cross-checks the engine against a
// direct Go evaluation of the same predicate over random numeric rows.
func TestComparisonAgainstNaiveEvaluator(t *testing.T) {
	ops := []struct {
		sql  string
		eval func(a, b float64) bool
	}{
		{"<", func(a, b float64) bool { return a < b }},
		{"<=", func(a, b float64) bool { return a <= b }},
		{">", func(a, b float64) bool { return a > b }},
		{">=", func(a, b float64) bool { return a >= b }},
		{"=", func(a, b float64) bool { return a == b }},
		{"<>", func(a, b float64) bool { return a != b }},
	}
	f := func(vals []uint8, bound uint8, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		rows := make([]Row, len(vals))
		want := 0
		for i, v := range vals {
			rows[i] = Row{"v": float64(v)}
			if op.eval(float64(v), float64(bound)) {
				want++
			}
		}
		c := MapCatalog{"T": &MemTable{Cols: []string{"v"}, Data: rows}}
		rs, err := Exec(c, fmt.Sprintf("SELECT v FROM T WHERE v %s %d", op.sql, bound), nil)
		return err == nil && rs.Total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAndOrDistribution checks that (p AND q) OR r evaluates identically
// to its naive expansion for random boolean columns.
func TestAndOrDistribution(t *testing.T) {
	f := func(ps, qs, rs []bool) bool {
		n := len(ps)
		if len(qs) < n {
			n = len(qs)
		}
		if len(rs) < n {
			n = len(rs)
		}
		rows := make([]Row, n)
		want := 0
		for i := 0; i < n; i++ {
			rows[i] = Row{"p": b2f(ps[i]), "q": b2f(qs[i]), "r": b2f(rs[i])}
			if (ps[i] && qs[i]) || rs[i] {
				want++
			}
		}
		c := MapCatalog{"T": &MemTable{Cols: []string{"p", "q", "r"}, Data: rows}}
		res, err := Exec(c, "SELECT p FROM T WHERE (p = 1 AND q = 1) OR r = 1", nil)
		return err == nil && res.Total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TestOrderByIsSorted verifies ORDER BY yields a non-decreasing (or
// non-increasing) sequence for random inputs.
func TestOrderByIsSorted(t *testing.T) {
	f := func(vals []int16, desc bool) bool {
		rows := make([]Row, len(vals))
		for i, v := range vals {
			rows[i] = Row{"v": float64(v)}
		}
		c := MapCatalog{"T": &MemTable{Cols: []string{"v"}, Data: rows}}
		q := "SELECT v FROM T ORDER BY v"
		if desc {
			q += " DESC"
		}
		rs, err := Exec(c, q, nil)
		if err != nil || len(rs.Rows) != len(vals) {
			return false
		}
		for i := 1; i < len(rs.Rows); i++ {
			a := rs.Rows[i-1][0].(float64)
			b := rs.Rows[i][0].(float64)
			if desc && a < b {
				return false
			}
			if !desc && a > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestNotIsComplement: NOT p selects exactly the complement of p over
// non-null rows.
func TestNotIsComplement(t *testing.T) {
	f := func(vals []uint8, bound uint8) bool {
		rows := make([]Row, len(vals))
		for i, v := range vals {
			rows[i] = Row{"v": float64(v)}
		}
		c := MapCatalog{"T": &MemTable{Cols: []string{"v"}, Data: rows}}
		pos, err1 := Exec(c, fmt.Sprintf("SELECT v FROM T WHERE v < %d", bound), nil)
		neg, err2 := Exec(c, fmt.Sprintf("SELECT v FROM T WHERE NOT v < %d", bound), nil)
		return err1 == nil && err2 == nil && pos.Total+neg.Total == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctNeverExceedsTotal and is idempotent on already-distinct data.
func TestDistinctProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		rows := make([]Row, len(vals))
		set := map[uint8]bool{}
		for i, v := range vals {
			rows[i] = Row{"v": float64(v)}
			set[v] = true
		}
		c := MapCatalog{"T": &MemTable{Cols: []string{"v"}, Data: rows}}
		rs, err := Exec(c, "SELECT DISTINCT v FROM T", nil)
		return err == nil && rs.Total == len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
