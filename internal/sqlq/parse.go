package sqlq

import "strconv"

// SelectStmt is the parsed form of a query.
type SelectStmt struct {
	Distinct bool
	// Columns is nil for SELECT *.
	Columns []ColRef
	Table   string
	Alias   string
	Where   Expr // nil when absent
	OrderBy []OrderKey
	Limit   int // -1 when absent
	Offset  int // 0 when absent
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Col  ColRef
	Desc bool
}

// Expr is a boolean or value expression node.
type Expr interface{ isExpr() }

// ColRef names a column, optionally alias-qualified.
type ColRef struct {
	Qualifier string // "" or the table alias
	Name      string
}

// Literal is a string or numeric constant; Null marks IS NULL sentinels.
type Literal struct {
	Str   *string
	Num   *float64
	IsNul bool
}

// Param is a $named placeholder bound at execution time.
type Param struct{ Name string }

// BinaryExpr is AND/OR.
type BinaryExpr struct {
	Op   string // "AND" | "OR"
	L, R Expr
}

// NotExpr negates its operand.
type NotExpr struct{ E Expr }

// Comparison applies =, <>, <, <=, >, >= between two value expressions.
type Comparison struct {
	Op   string
	L, R Expr
}

// LikeExpr is col [NOT] LIKE pattern.
type LikeExpr struct {
	Col     Expr
	Pattern Expr
	Negate  bool
}

// InExpr is col [NOT] IN (v1, v2, ...).
type InExpr struct {
	Col    Expr
	Values []Expr
	Negate bool
}

// IsNullExpr is col IS [NOT] NULL.
type IsNullExpr struct {
	Col    Expr
	Negate bool
}

func (ColRef) isExpr()     {}
func (Literal) isExpr()    {}
func (Param) isExpr()      {}
func (BinaryExpr) isExpr() {}
func (NotExpr) isExpr()    {}
func (Comparison) isExpr() {}
func (LikeExpr) isExpr()   {}
func (InExpr) isExpr()     {}
func (IsNullExpr) isExpr() {}

// Parse compiles a query string into a SelectStmt.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, errf(p.peek().pos, "unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token has the given kind (and text, when
// non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = "identifier"
		}
		return token{}, errf(p.peek().pos, "expected %s, found %s", want, p.peek())
	}
	return p.advance(), nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(tokKeyword, "DISTINCT")

	if p.accept(tokSymbol, "*") {
		stmt.Columns = nil
	} else {
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.Table = tbl.text
	if p.at(tokIdent, "") {
		stmt.Alias = p.advance().text
	}

	if p.accept(tokKeyword, "WHERE") {
		stmt.Where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
		if p.accept(tokKeyword, "OFFSET") {
			m, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			stmt.Offset = m
		}
	}
	return stmt, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, errf(t.pos, "expected non-negative integer, found %q", t.text)
	}
	return n, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		second, err := p.expect(tokIdent, "")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first.text, Name: second.text}, nil
	}
	return ColRef{Name: first.text}, nil
}

// parseOr handles OR (lowest precedence).
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses a parenthesized boolean group or a comparison.
func (p *parser) parsePredicate() (Expr, error) {
	if p.accept(tokSymbol, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	left, err := p.parseValue()
	if err != nil {
		return nil, err
	}

	negate := false
	if p.at(tokKeyword, "NOT") {
		// col NOT LIKE / col NOT IN
		save := p.i
		p.advance()
		if p.at(tokKeyword, "LIKE") || p.at(tokKeyword, "IN") {
			negate = true
		} else {
			p.i = save
		}
	}

	switch {
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return LikeExpr{Col: left, Pattern: pat, Negate: negate}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var vals []Expr
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return InExpr{Col: left, Values: vals, Negate: negate}, nil
	case p.accept(tokKeyword, "IS"):
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNullExpr{Col: left, Negate: neg}, nil
	}

	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return Comparison{Op: op, L: left, R: right}, nil
		}
	}
	return nil, errf(p.peek().pos, "expected comparison operator, found %s", p.peek())
}

func (p *parser) parseValue() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		return p.parseColRef()
	case tokString:
		p.advance()
		s := t.text
		return Literal{Str: &s}, nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return Literal{Num: &n}, nil
	case tokParam:
		p.advance()
		return Param{Name: t.text}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.advance()
			return Literal{IsNul: true}, nil
		}
	}
	return nil, errf(t.pos, "expected value, found %s", t)
}
