// Package sqlq implements the SQL-92 subset that backs the registry's
// AdhocQuery protocol. SQL-92 is "the preferred query syntax, used
// pervasively in freebXML Registry" (thesis §2.2.3), so the QueryManager's
// discovery path is real SQL over the registry's logical tables rather
// than hand-rolled filters.
//
// Supported grammar:
//
//	SELECT select_list FROM table [alias]
//	    [WHERE predicate] [ORDER BY column [ASC|DESC], ...]
//	    [LIMIT n [OFFSET m]]
//
//	select_list := * | column [, column ...]
//	predicate   := comparisons with = <> != < <= > >=, LIKE, IN (...),
//	               IS [NOT] NULL, NOT, AND, OR, parentheses
//	values      := 'strings', numbers, $named or :named parameters
//
// Identifiers may be alias-qualified (s.name). Matching for LIKE uses the
// same case-insensitive %/_ semantics as the store's name index.
package sqlq

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokParam  // $name or :name
	tokSymbol // punctuation and operators
)

// token is one lexeme.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep their case
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized by the parser (always upper-case here).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "IN": true, "IS": true, "NULL": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "DISTINCT": true,
}

// lexer scans a query string into tokens.
type lexer struct {
	src string
	pos int
}

// Error is a positioned query error.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("sqlq: at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the whole query.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '$' || c == ':':
		l.pos++
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, errf(start, "bare %q is not a parameter", string(c))
		}
		return token{kind: tokParam, text: l.src[start+1 : l.pos], pos: start}, nil
	case isDigit(c):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		if up := strings.ToUpper(word); keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil
	default:
		// Multi-byte operators first.
		for _, op := range []string{"<>", "!=", "<=", ">="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokSymbol, text: op, pos: start}, nil
			}
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '*', '.':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, errf(start, "unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, errf(start, "unterminated string literal")
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isIdentByte(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}
