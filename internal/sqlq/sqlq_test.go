package sqlq

import (
	"strings"
	"testing"
	"testing/quick"
)

func catalog() Catalog {
	return MapCatalog{
		"Service": &MemTable{
			Cols: []string{"id", "name", "description", "status", "bindings"},
			Data: []Row{
				{"id": "urn:uuid:1", "name": "NodeStatus", "description": "monitor", "status": "Approved", "bindings": float64(2)},
				{"id": "urn:uuid:2", "name": "DemoSrv_AddAccessUri", "description": nil, "status": "Submitted", "bindings": float64(1)},
				{"id": "urn:uuid:3", "name": "DemoSrv_DeleteService", "description": "temp", "status": "Deprecated", "bindings": float64(0)},
				{"id": "urn:uuid:4", "name": "Adder", "description": "adds", "status": "Approved", "bindings": float64(3)},
			},
		},
		"NodeState": &MemTable{
			Cols: []string{"host", "load", "memory", "swapmemory"},
			Data: []Row{
				{"host": "thermo.sdsu.edu", "load": 0.25, "memory": float64(4 << 30), "swapmemory": float64(1 << 30)},
				{"host": "exergy.sdsu.edu", "load": 3.5, "memory": float64(2 << 30), "swapmemory": float64(1 << 30)},
			},
		},
	}
}

func mustExec(t *testing.T, q string, params map[string]Value) *ResultSet {
	t.Helper()
	rs, err := Exec(catalog(), q, params)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return rs
}

func TestSelectStar(t *testing.T) {
	rs := mustExec(t, "SELECT * FROM Service", nil)
	if len(rs.Columns) != 5 || len(rs.Rows) != 4 || rs.Total != 4 {
		t.Fatalf("rs = %+v", rs)
	}
}

func TestSelectColumnsWithAlias(t *testing.T) {
	rs := mustExec(t, "SELECT s.id, s.name FROM Service s WHERE s.status = 'Approved'", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if rs.Columns[0] != "id" || rs.Columns[1] != "name" {
		t.Fatalf("cols = %v", rs.Columns)
	}
}

func TestWhereLike(t *testing.T) {
	rs := mustExec(t, "SELECT name FROM Service WHERE name LIKE 'DemoSrv%'", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	rs = mustExec(t, "SELECT name FROM Service WHERE name NOT LIKE 'DemoSrv%'", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("not-like rows = %d", len(rs.Rows))
	}
	// LIKE is case-insensitive like the registry's name matching.
	rs = mustExec(t, "SELECT name FROM Service WHERE name LIKE 'demosrv%'", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("ci rows = %d", len(rs.Rows))
	}
}

func TestWhereAndOrNotParens(t *testing.T) {
	q := "SELECT name FROM Service WHERE (status = 'Approved' AND bindings > 1) OR name = 'Adder'"
	rs := mustExec(t, q, nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	q = "SELECT name FROM Service WHERE NOT status = 'Approved'"
	rs = mustExec(t, q, nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("not rows = %d", len(rs.Rows))
	}
}

func TestNumericComparisons(t *testing.T) {
	for q, want := range map[string]int{
		"SELECT host FROM NodeState WHERE load < 1.0":          1,
		"SELECT host FROM NodeState WHERE load >= 0.25":        2,
		"SELECT host FROM NodeState WHERE load <> 0.25":        1,
		"SELECT host FROM NodeState WHERE load != 0.25":        1,
		"SELECT host FROM NodeState WHERE memory > 3000000000": 1,
	} {
		if rs := mustExec(t, q, nil); len(rs.Rows) != want {
			t.Errorf("%s -> %d rows, want %d", q, len(rs.Rows), want)
		}
	}
}

func TestInAndIsNull(t *testing.T) {
	rs := mustExec(t, "SELECT name FROM Service WHERE status IN ('Approved', 'Deprecated')", nil)
	if len(rs.Rows) != 3 {
		t.Fatalf("in rows = %d", len(rs.Rows))
	}
	rs = mustExec(t, "SELECT name FROM Service WHERE status NOT IN ('Approved')", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("not-in rows = %d", len(rs.Rows))
	}
	rs = mustExec(t, "SELECT name FROM Service WHERE description IS NULL", nil)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "DemoSrv_AddAccessUri" {
		t.Fatalf("is-null rows = %v", rs.Rows)
	}
	rs = mustExec(t, "SELECT name FROM Service WHERE description IS NOT NULL", nil)
	if len(rs.Rows) != 3 {
		t.Fatalf("is-not-null rows = %d", len(rs.Rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	rs := mustExec(t, "SELECT name FROM Service ORDER BY name", nil)
	if rs.Rows[0][0] != "Adder" || rs.Rows[3][0] != "NodeStatus" {
		t.Fatalf("order = %v", rs.Rows)
	}
	rs = mustExec(t, "SELECT name FROM Service ORDER BY bindings DESC, name ASC", nil)
	if rs.Rows[0][0] != "Adder" {
		t.Fatalf("desc order = %v", rs.Rows)
	}
	rs = mustExec(t, "SELECT name FROM Service ORDER BY name LIMIT 2 OFFSET 1", nil)
	if len(rs.Rows) != 2 || rs.Rows[0][0] != "DemoSrv_AddAccessUri" {
		t.Fatalf("limit/offset = %v", rs.Rows)
	}
	if rs.Total != 4 {
		t.Fatalf("Total = %d, want pre-limit count 4", rs.Total)
	}
	// Offset beyond end yields empty.
	rs = mustExec(t, "SELECT name FROM Service LIMIT 10 OFFSET 99", nil)
	if len(rs.Rows) != 0 {
		t.Fatalf("big offset = %v", rs.Rows)
	}
}

func TestParameters(t *testing.T) {
	rs := mustExec(t, "SELECT name FROM Service WHERE name LIKE $pattern", map[string]Value{"pattern": "Demo%"})
	if len(rs.Rows) != 2 {
		t.Fatalf("param rows = %d", len(rs.Rows))
	}
	rs = mustExec(t, "SELECT host FROM NodeState WHERE load < :maxload", map[string]Value{"maxload": 1.0})
	if len(rs.Rows) != 1 {
		t.Fatalf("colon-param rows = %d", len(rs.Rows))
	}
	if _, err := Exec(catalog(), "SELECT name FROM Service WHERE name = $missing", nil); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unbound param: %v", err)
	}
}

func TestDistinct(t *testing.T) {
	rs := mustExec(t, "SELECT DISTINCT status FROM Service", nil)
	if len(rs.Rows) != 3 {
		t.Fatalf("distinct rows = %d", len(rs.Rows))
	}
}

func TestStringEscapes(t *testing.T) {
	c := MapCatalog{"T": &MemTable{Cols: []string{"v"}, Data: []Row{{"v": "it's"}}}}
	rs, err := Exec(c, "SELECT v FROM T WHERE v = 'it''s'", nil)
	if err != nil || len(rs.Rows) != 1 {
		t.Fatalf("escaped quote: %v, %v", rs, err)
	}
}

func TestCaseInsensitiveKeywordsAndTable(t *testing.T) {
	rs := mustExec(t, "select name from service where Status = 'Approved' order by NAME desc limit 1", nil)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "NodeStatus" {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM Service",
		"SELECT * FROM",
		"SELECT * FROM Service WHERE",
		"SELECT * FROM Service WHERE name",
		"SELECT * FROM Service WHERE name = ",
		"SELECT * FROM Service WHERE name = 'x' garbage",
		"SELECT * FROM Service WHERE name LIKE",
		"SELECT * FROM Service WHERE name IN 'x'",
		"SELECT * FROM Service WHERE name IN ('x'",
		"SELECT * FROM Service LIMIT 'x'",
		"SELECT * FROM Service WHERE name = 'unterminated",
		"SELECT * FROM Service WHERE name = $",
		"SELECT * FROM Service ORDER name",
		"SELECT * FROM Service WHERE name ~ 'x'",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []string{
		"SELECT * FROM Nonexistent",
		"SELECT nope FROM Service",
		"SELECT x.name FROM Service s", // wrong qualifier
		"SELECT name FROM Service ORDER BY nope",
		"SELECT name FROM Service WHERE nope = 1",
	}
	for _, q := range cases {
		if _, err := Exec(catalog(), q, nil); err == nil {
			t.Errorf("Exec(%q) accepted", q)
		}
	}
}

func TestQualifierMatchesTableNameToo(t *testing.T) {
	rs := mustExec(t, "SELECT Service.name FROM Service WHERE Service.status = 'Approved'", nil)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
}

func TestLikeMatchesSQLSemantics(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"NodeStatus", "Node%", true},
		{"NodeStatus", "%status", true},
		{"NodeStatus", "N_deStatus", true},
		{"NodeStatus", "N_eStatus", false},
		{"", "%", true},
		{"x", "", false},
	}
	for _, c := range cases {
		if got := likePatternMatch(c.s, c.p); got != c.want {
			t.Errorf("like(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

// Property: LIMIT/OFFSET slicing never exceeds Total and always returns a
// contiguous window.
func TestLimitOffsetProperty(t *testing.T) {
	f := func(limit, offset uint8) bool {
		rows := make([]Row, 10)
		for i := range rows {
			rows[i] = Row{"n": float64(i)}
		}
		c := MapCatalog{"T": &MemTable{Cols: []string{"n"}, Data: rows}}
		q := "SELECT n FROM T ORDER BY n LIMIT " + itoa(int(limit%12)) + " OFFSET " + itoa(int(offset%12))
		rs, err := Exec(c, q, nil)
		if err != nil {
			return false
		}
		if rs.Total != 10 || len(rs.Rows) > int(limit%12) {
			return false
		}
		for i, r := range rs.Rows {
			if r[0].(float64) != float64(int(offset%12)+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
