// Package metrics provides the statistics used to evaluate the load
// balancing scheme: per-host load/memory summaries, imbalance measures
// (standard deviation, max/min spread, Jain's fairness index), time series,
// and fixed-bucket histograms for task latency.
//
// The thesis claims that with the scheme in place "the CPU load and system
// memory is uniformly maintained" across hosts (Abstract, §5.1). This
// package quantifies "uniformly maintained" so the experiment harness in
// cmd/lbsim and the benchmarks in bench_test.go can compare the proposed
// scheme against the stock-freebXML baseline.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N))
	return s
}

// Spread returns Max-Min, the thesis's informal notion of "some hosts
// overwhelmed while others starve".
func (s Summary) Spread() float64 { return s.Max - s.Min }

// CV returns the coefficient of variation (stddev/mean), a scale-free
// imbalance measure. It is 0 for a perfectly uniform non-zero sample and 0
// by convention when the mean is 0.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// JainFairness computes Jain's fairness index (sum x)^2 / (n * sum x^2).
// It is 1.0 for a perfectly uniform allocation and 1/n when a single host
// receives everything. An empty or all-zero sample is defined as 1.0
// (nothing is unfair about nothing).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	// Normalize by the largest magnitude so the squares cannot overflow
	// even for samples near math.MaxFloat64; fairness is scale-invariant.
	var scale float64
	for _, x := range xs {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		v := x / scale
		sum += v
		sumsq += v * v
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Series is an append-only time series of (t, value) samples, used to track
// per-host load over a simulation run.
type Series struct {
	Name   string
	Times  []time.Time
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(t time.Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Summary summarizes the series values.
func (s *Series) Summary() Summary { return Summarize(s.Values) }

// Histogram is a fixed-bucket latency/size histogram.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf final bucket
	counts []int
	total  int
	sum    float64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
// Values land in the first bucket whose bound is >= value; values beyond
// the last bound land in an overflow bucket.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int, len(b)+1)}
}

// Observe records a value.
func (h *Histogram) Observe(v float64) {
	h.total++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.total }

// Mean returns the mean of observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Buckets returns (upperBound, count) pairs; the final pair has
// math.Inf(1) as its bound.
func (h *Histogram) Buckets() ([]float64, []int) {
	bounds := append(append([]float64(nil), h.bounds...), math.Inf(1))
	return bounds, append([]int(nil), h.counts...)
}

// String renders the histogram as a compact text bar chart.
func (h *Histogram) String() string {
	var sb strings.Builder
	bounds, counts := h.Buckets()
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, b := range bounds {
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", counts[i]*40/maxC)
		}
		if math.IsInf(b, 1) {
			fmt.Fprintf(&sb, "   +Inf %6d %s\n", counts[i], bar)
		} else {
			fmt.Fprintf(&sb, "%7.3g %6d %s\n", b, counts[i], bar)
		}
	}
	return sb.String()
}

// Table renders rows of labelled float columns as an aligned text table, the
// format used by cmd/lbsim and EXPERIMENTS.md to report experiment results.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells are formatted with %v for non-strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv4(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func strconv4(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
