package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a concurrency-safe monotonic event counter, used by the
// collector's fault-tolerance telemetry (timeouts, retries, sweep errors,
// breaker skips) and the constraint cache. It sits on the discovery fast
// path, so it is a bare atomic rather than a mutexed int: Inc is one
// uncontended atomic add and Value one atomic load.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// GaugeSet is a concurrency-safe map of labelled gauges — one float per
// label, last write wins — used for per-host breaker states.
//
// The label set is effectively fixed after the first collector sweep
// (hosts come from CollectionTargets), while reads happen on every
// breaker check and metrics scrape. The layout exploits that: an
// atomic.Pointer holds an immutable map from label to a per-label atomic
// cell, so Set on a known label and every read path are lock-free; the
// mutex is taken only to grow the label set, by publishing a copied map.
type GaugeSet struct {
	mu   sync.Mutex // serialises label insertion only
	vals atomic.Pointer[map[string]*atomic.Uint64]
}

func (g *GaugeSet) cell(label string) *atomic.Uint64 {
	if m := g.vals.Load(); m != nil {
		if c, ok := (*m)[label]; ok {
			return c
		}
	}
	return nil
}

// Set writes the gauge for label.
func (g *GaugeSet) Set(label string, v float64) {
	bits := math.Float64bits(v)
	if c := g.cell(label); c != nil {
		c.Store(bits)
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Re-check under the lock: another writer may have inserted the label.
	if c := g.cell(label); c != nil {
		c.Store(bits)
		return
	}
	old := g.vals.Load()
	var size int
	if old != nil {
		size = len(*old)
	}
	next := make(map[string]*atomic.Uint64, size+1)
	if old != nil {
		for l, c := range *old {
			next[l] = c
		}
	}
	c := new(atomic.Uint64)
	c.Store(bits)
	next[label] = c
	g.vals.Store(&next)
}

// Value returns the gauge for label (zero when never set).
func (g *GaugeSet) Value(label string) float64 {
	if c := g.cell(label); c != nil {
		return math.Float64frombits(c.Load())
	}
	return 0
}

// Labels returns the set labels in sorted order.
func (g *GaugeSet) Labels() []string {
	m := g.vals.Load()
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(*m))
	for l := range *m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of every labelled gauge.
func (g *GaugeSet) Snapshot() map[string]float64 {
	m := g.vals.Load()
	if m == nil {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(*m))
	for l, c := range *m {
		out[l] = math.Float64frombits(c.Load())
	}
	return out
}
