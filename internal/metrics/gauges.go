package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a concurrency-safe monotonic event counter, used by the
// collector's fault-tolerance telemetry (timeouts, retries, sweep errors,
// breaker skips) and the constraint cache. It sits on the discovery fast
// path, so it is a bare atomic rather than a mutexed int: Inc is one
// uncontended atomic add and Value one atomic load.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// GaugeSet is a concurrency-safe map of labelled gauges — one float per
// label, last write wins — used for per-host breaker states.
//
// The label set is effectively fixed after the first collector sweep
// (hosts come from CollectionTargets), while reads happen on every
// breaker check and metrics scrape. The layout exploits that: an
// atomic.Pointer holds an immutable map from label to a per-label atomic
// cell, so Set on a known label and every read path are lock-free; the
// mutex is taken only to grow the label set, by publishing a copied map.
type GaugeSet struct {
	mu   sync.Mutex // serialises label insertion only
	vals atomic.Pointer[map[string]*atomic.Uint64]
}

func (g *GaugeSet) cell(label string) *atomic.Uint64 {
	if m := g.vals.Load(); m != nil {
		if c, ok := (*m)[label]; ok {
			return c
		}
	}
	return nil
}

// Set writes the gauge for label.
func (g *GaugeSet) Set(label string, v float64) {
	bits := math.Float64bits(v)
	if c := g.cell(label); c != nil {
		c.Store(bits)
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Re-check under the lock: another writer may have inserted the label.
	if c := g.cell(label); c != nil {
		c.Store(bits)
		return
	}
	old := g.vals.Load()
	var size int
	if old != nil {
		size = len(*old)
	}
	next := make(map[string]*atomic.Uint64, size+1)
	if old != nil {
		for l, c := range *old {
			next[l] = c
		}
	}
	c := new(atomic.Uint64)
	c.Store(bits)
	next[label] = c
	g.vals.Store(&next)
}

// Value returns the gauge for label (zero when never set).
func (g *GaugeSet) Value(label string) float64 {
	if c := g.cell(label); c != nil {
		return math.Float64frombits(c.Load())
	}
	return 0
}

// Labels returns the set labels in sorted order.
func (g *GaugeSet) Labels() []string {
	m := g.vals.Load()
	if m == nil {
		return nil
	}
	out := make([]string, 0, len(*m))
	for l := range *m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// CounterSet is GaugeSet's monotonic sibling: a concurrency-safe map of
// labelled counters, used for per-host discovery assignment counts. The
// same copy-on-write layout applies — Inc on a known label and every
// read are lock-free; the mutex only serialises label insertion, which
// happens once per host ever.
type CounterSet struct {
	mu   sync.Mutex // serialises label insertion only
	vals atomic.Pointer[map[string]*atomic.Int64]
}

func (c *CounterSet) cell(label string) *atomic.Int64 {
	if m := c.vals.Load(); m != nil {
		if n, ok := (*m)[label]; ok {
			return n
		}
	}
	return nil
}

// Inc adds one to the counter for label.
//
//repolint:hotpath the known-label path is one map read and an atomic add
func (c *CounterSet) Inc(label string) { c.Add(label, 1) }

// Add adds delta to the counter for label.
//
//repolint:hotpath the known-label path is one map read and an atomic add
func (c *CounterSet) Add(label string, delta int64) {
	if n := c.cell(label); n != nil {
		n.Add(delta)
		return
	}
	c.addSlow(label, delta)
}

// addSlow publishes a copied map with the new label's cell.
//
//repolint:coldpath runs once per label ever
func (c *CounterSet) addSlow(label string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check under the lock: another writer may have inserted the label.
	if n := c.cell(label); n != nil {
		n.Add(delta)
		return
	}
	old := c.vals.Load()
	var size int
	if old != nil {
		size = len(*old)
	}
	next := make(map[string]*atomic.Int64, size+1)
	if old != nil {
		for l, n := range *old {
			next[l] = n
		}
	}
	n := new(atomic.Int64)
	n.Store(delta)
	next[label] = n
	c.vals.Store(&next)
}

// Value returns the counter for label (zero when never incremented).
func (c *CounterSet) Value(label string) int64 {
	if n := c.cell(label); n != nil {
		return n.Load()
	}
	return 0
}

// Snapshot returns a copy of every labelled counter.
func (c *CounterSet) Snapshot() map[string]int64 {
	m := c.vals.Load()
	if m == nil {
		return map[string]int64{}
	}
	out := make(map[string]int64, len(*m))
	for l, n := range *m {
		out[l] = n.Load()
	}
	return out
}

// Snapshot returns a copy of every labelled gauge.
func (g *GaugeSet) Snapshot() map[string]float64 {
	m := g.vals.Load()
	if m == nil {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(*m))
	for l, c := range *m {
		out[l] = math.Float64frombits(c.Load())
	}
	return out
}
