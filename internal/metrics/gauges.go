package metrics

import (
	"sort"
	"sync"
)

// Counter is a concurrency-safe monotonic event counter, used by the
// collector's fault-tolerance telemetry (timeouts, retries, sweep errors,
// breaker skips).
type Counter struct {
	mu sync.Mutex
	n  int64 // guarded by mu
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GaugeSet is a concurrency-safe map of labelled gauges — one float per
// label, last write wins — used for per-host breaker states.
type GaugeSet struct {
	mu   sync.Mutex
	vals map[string]float64 // guarded by mu
}

// Set writes the gauge for label.
func (g *GaugeSet) Set(label string, v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.vals == nil {
		g.vals = make(map[string]float64)
	}
	g.vals[label] = v
}

// Value returns the gauge for label (zero when never set).
func (g *GaugeSet) Value(label string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[label]
}

// Labels returns the set labels in sorted order.
func (g *GaugeSet) Labels() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.vals))
	for l := range g.vals {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of every labelled gauge.
func (g *GaugeSet) Snapshot() map[string]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]float64, len(g.vals))
	for l, v := range g.vals {
		out[l] = v
	}
	return out
}
