package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) || !almost(s.Sum, 10) {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.Stddev, math.Sqrt(1.25)) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if !almost(s.Spread(), 3) {
		t.Fatalf("spread = %v", s.Spread())
	}
	if !almost(s.CV(), s.Stddev/2.5) {
		t.Fatalf("cv = %v", s.CV())
	}
}

func TestSummarizeEmptyAndZeroMean(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{-1, 1})
	if s.CV() != 0 {
		t.Fatalf("CV with zero mean should be 0, got %v", s.CV())
	}
}

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{5, 5, 5, 5}); !almost(f, 1) {
		t.Fatalf("uniform fairness = %v", f)
	}
	if f := JainFairness([]float64{10, 0, 0, 0}); !almost(f, 0.25) {
		t.Fatalf("single-host fairness = %v, want 0.25", f)
	}
	if f := JainFairness(nil); f != 1 {
		t.Fatalf("empty fairness = %v", f)
	}
	if f := JainFairness([]float64{0, 0}); f != 1 {
		t.Fatalf("all-zero fairness = %v", f)
	}
}

func TestJainFairnessBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Clean NaN/Inf and negatives out: fairness is defined on loads >= 0.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Abs(x))
			}
		}
		if len(clean) == 0 {
			return JainFairness(clean) == 1
		}
		j := JainFairness(clean)
		return j >= 1/float64(len(clean))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if p := Percentile(xs, 0); !almost(p, 1) {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); !almost(p, 4) {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); !almost(p, 2.5) {
		t.Fatalf("p50 = %v", p)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	t0 := time.Date(2011, 4, 22, 0, 0, 0, 0, time.UTC)
	if s.Last() != 0 {
		t.Fatal("empty Last should be 0")
	}
	s.Add(t0, 1.5)
	s.Add(t0.Add(time.Second), 2.5)
	if s.Last() != 2.5 {
		t.Fatalf("Last = %v", s.Last())
	}
	if sum := s.Summary(); sum.N != 2 || !almost(sum.Mean, 2) {
		t.Fatalf("series summary: %+v", sum)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500, 1} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	want := []int{2, 1, 1, 1} // 0.5 and 1 in <=1; 5 in <=10; 50 in <=100; 500 overflow
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if !almost(h.Mean(), (0.5+5+50+500+1)/5) {
		t.Fatalf("mean = %v", h.Mean())
	}
	if !strings.Contains(h.String(), "+Inf") {
		t.Fatalf("String missing overflow row:\n%s", h.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should have zero mean and count")
	}
	_ = h.String() // must not panic
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("policy", "fairness", "tasks")
	tb.AddRow("first-uri", 0.25, 1000)
	tb.AddRow("constrained-lb", 0.9876, 1000)
	out := tb.String()
	if !strings.Contains(out, "policy") || !strings.Contains(out, "0.9876") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestSummarizePropertyMeanWithinMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
