package admit

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
	"repro/internal/soap"
)

// RejectFormat selects the preserialized body a shed request receives:
// the REST surface speaks JSON, the SOAP surface gets a typed fault.
type RejectFormat uint8

const (
	// RejectJSON answers 503 with a small JSON error document.
	RejectJSON RejectFormat = iota
	// RejectSOAP answers 503 with a typed Server.Overloaded SOAP fault.
	RejectSOAP
)

// OverloadedFaultCode is the faultcode of the typed SOAP fault shed
// requests receive. Clients match on it to distinguish "back off and
// retry" from a genuine server error.
const OverloadedFaultCode = "Server.Overloaded"

// OverloadedFault builds the typed SOAP fault for a shed request.
func OverloadedFault(retryAfter time.Duration) *soap.Fault {
	return &soap.Fault{
		Code:   OverloadedFaultCode,
		String: "registry overloaded; retry after " + strconv.FormatInt(retryAfterSeconds(retryAfter), 10) + "s",
		Detail: "admission control shed this request before execution",
	}
}

// retryAfterSeconds rounds the advisory backoff up to whole seconds,
// the resolution of the Retry-After header.
func retryAfterSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// buildRejects preserializes the shed responses and headers once so the
// reject path allocates nothing per request.
func (c *Controller) buildRejects() {
	secs := strconv.FormatInt(retryAfterSeconds(c.cfg.RetryAfter), 10)
	c.retryAfterHeader = []string{secs}
	c.jsonContentType = []string{"application/json"}
	c.soapContentType = []string{soap.ContentType}
	c.rejectJSON = []byte(`{"error":"overloaded","retryAfterSeconds":` + secs + `}` + "\n")
	env, err := soap.Marshal(OverloadedFault(c.cfg.RetryAfter))
	if err != nil {
		// Marshal of a static struct cannot fail; fall back to the
		// JSON body rather than panic in a constructor.
		env = c.rejectJSON
	}
	c.rejectSOAP = env
}

// Reject writes the preserialized 503 + Retry-After shed response.
//
//repolint:hotpath the reject path is the hot path under overload
func (c *Controller) Reject(w http.ResponseWriter, format RejectFormat) {
	h := w.Header()
	h["Retry-After"] = c.retryAfterHeader
	if format == RejectSOAP {
		h["Content-Type"] = c.soapContentType
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(c.rejectSOAP)
		return
	}
	h["Content-Type"] = c.jsonContentType
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write(c.rejectJSON)
}

// FastHandler is the optional zero-allocation escape hatch a wrapped
// handler can implement. After a request is admitted — and before the
// deadline budget derives a context (which allocates) — Wrap offers the
// request to FastServe. Returning true means the response was written in
// full (typically from a preserialized cache) and the slot is released
// immediately; returning false falls through to the normal path. A fast
// path must not block, so running it without a deadline budget is sound.
type FastHandler interface {
	FastServe(w http.ResponseWriter, r *http.Request) bool
}

// AdmissionNoter is implemented by ResponseWriter wrappers that want to
// know the request waited in the admission queue before being served
// (the flight recorder's frame, for one). Wrap asserts for it on the
// promoted path only, so admit stays independent of the observer.
type AdmissionNoter interface {
	NoteQueued()
}

// Wrap guards next with admission control and deadline enforcement for
// class. A nil *Controller wraps nothing, so callers can build their mux
// unconditionally and flip admission with one config field.
//
// The request flow: TryAdmit → (possibly) wait FIFO for a slot, bounded
// by the class queue timeout and the client disconnecting → offer the
// request to next's FastServe if it implements FastHandler → otherwise
// run next with the class deadline budget on the request context →
// Release the slot, promoting the next waiter. The FastHandler assertion
// happens once here, not per request.
func (c *Controller) Wrap(class Class, format RejectFormat, next http.Handler) http.Handler {
	if c == nil {
		return next
	}
	fast, _ := next.(FastHandler)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := c.clock.Now()
		out, t := c.TryAdmit(class, now)
		switch out {
		case Shed:
			c.Reject(w, format)
			return
		case Queued:
			if !c.awaitTurn(t, r) {
				c.Reject(w, format)
				return
			}
			if n, ok := w.(AdmissionNoter); ok {
				n.NoteQueued()
			}
		}
		// The fast path runs before the defer below is registered, so a
		// hit never pays for the deferred closure either.
		if fast != nil && fast.FastServe(w, r) {
			c.Release(class, now, c.clock.Now())
			return
		}
		defer func() {
			c.Release(class, now, c.clock.Now())
		}()
		d := c.Deadline(class, r.Header.Get(DeadlineHeader))
		if d <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel, exceeded := c.WithBudget(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
		if exceeded() {
			c.NoteDeadlineExceeded(class)
		}
	})
}

// awaitTurn blocks a queued request until its ticket is promoted, the
// class queue timeout fires, or the client disconnects. It reports
// whether the request now owns an in-flight slot.
func (c *Controller) awaitTurn(t *Ticket, r *http.Request) bool {
	qt := c.classes[t.class].limits.QueueTimeout
	select {
	case <-t.Ready():
		return true
	case <-r.Context().Done():
		if !c.CancelQueued(t, c.clock.Now(), false) {
			// Lost the race: the slot is ours. Run the handler anyway —
			// it observes the dead context and returns immediately, and
			// the normal Release path promotes the next waiter.
			return true
		}
		return false
	case <-c.clock.After(qt):
		if !c.CancelQueued(t, c.clock.Now(), true) {
			return true
		}
		return false
	}
}

// WithBudget derives a context that is cancelled after d on the
// controller's clock. The returned exceeded func reports (after the
// work finishes) whether the budget expired. On the real clock this is
// context.WithTimeout; on a simulated clock a helper goroutine races
// clock.After against completion so tests and the flash-crowd harness
// stay deterministic.
func (c *Controller) WithBudget(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc, func() bool) {
	if d <= 0 {
		return ctx, func() {}, func() bool { return false }
	}
	if _, ok := c.clock.(simclock.Real); ok {
		tctx, cancel := context.WithTimeout(ctx, d)
		return tctx, cancel, func() bool { return errors.Is(tctx.Err(), context.DeadlineExceeded) }
	}
	tctx, cancel := context.WithCancel(ctx)
	var hit atomic.Bool
	expire := c.clock.After(d)
	go func() {
		select {
		case <-expire:
			hit.Store(true)
			cancel()
		case <-tctx.Done():
		}
	}()
	return tctx, cancel, hit.Load
}
