// Package admit implements the overload-resilience layer for the
// registry serving edge. The thesis's balancer spreads load across
// NodeStatus hosts but leaves the registry process itself unprotected: a
// flash crowd of discovery or life-cycle requests queues unboundedly in
// net/http, latency explodes, and the collector and WAL starve. This
// package adds the missing self-protection:
//
//   - per-class admission control (discovery reads vs. life-cycle
//     writes) with a bounded in-flight limit and a bounded FIFO wait
//     queue per class — health and metrics endpoints bypass admission
//     entirely so operators can always see in;
//   - adaptive load shedding: an AIMD controller on the latency EWMA
//     and queue pressure lowers the accept rate for requests that would
//     otherwise wait, so excess offered load is rejected early with
//     503 + Retry-After instead of queuing behind a doomed deadline;
//   - server-side deadline budgets per class, honoring client budgets
//     from the X-Registry-Deadline-Ms header and cancelling in-flight
//     work through the request context;
//   - a brownout ladder that degrades service quality stepwise under
//     sustained pressure (tracing off → stale snapshots → static
//     fallback) and steps back up when the pressure clears.
//
// Decisions are deterministic functions of request arrival order and
// injected clock time — no randomness — so the flash-crowd harness in
// internal/lbexp replays byte-identically under a fixed seed.
package admit

import (
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Class partitions the serving edge by cost and criticality: discovery
// reads are cheap and latency-sensitive, life-cycle writes are expensive
// and durable. Each class gets its own in-flight limit, wait queue,
// shedder, and deadline so a write storm cannot starve discovery (and
// vice versa).
type Class uint8

const (
	// ClassDiscovery covers QueryManager reads: GetBindings, find,
	// ad-hoc queries, repository content.
	ClassDiscovery Class = iota
	// ClassLCM covers LifeCycleManager writes and the auth handshake
	// arriving over the SOAP surface.
	ClassLCM

	numClasses = 2
)

// String returns the metrics label for the class.
func (c Class) String() string {
	switch c {
	case ClassDiscovery:
		return "discovery"
	case ClassLCM:
		return "lcm"
	}
	return "unknown"
}

// Tier is one rung of the brownout ladder. Higher tiers trade service
// quality for survival under sustained overload.
type Tier int32

const (
	// TierNominal is normal full-quality service.
	TierNominal Tier = iota
	// TierNoTrace stops sampling discovery traces: the trace ring and
	// its allocations are the first ballast overboard.
	TierNoTrace
	// TierStale lets discovery serve RCU snapshots beyond
	// SnapshotMaxAge: slightly stale load data beats coherent-read
	// contention when the edge is saturated.
	TierStale
	// TierStatic forces the balancer's static fallback when filtering
	// leaves nothing, reusing core.DegradedStatic semantics: stock
	// ordering beats an empty answer during an incident.
	TierStatic
)

// String returns the tier's name for logs and experiment tables.
func (t Tier) String() string {
	switch t {
	case TierNominal:
		return "nominal"
	case TierNoTrace:
		return "no-trace"
	case TierStale:
		return "stale"
	case TierStatic:
		return "static"
	}
	return "unknown"
}

// DeadlineHeader is the request header carrying the client's remaining
// budget in integer milliseconds. The server honors it when it is
// tighter than the class default.
const DeadlineHeader = "X-Registry-Deadline-Ms"

// ClassLimits bounds one admission class.
type ClassLimits struct {
	// MaxInFlight is the concurrency limit: at most this many requests
	// of the class execute at once.
	MaxInFlight int
	// MaxQueue bounds the FIFO wait queue behind the in-flight limit.
	// Arrivals beyond it are shed immediately.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before it is shed.
	QueueTimeout time.Duration
	// Deadline is the class's default server-side budget for an
	// admitted request; 0 disables deadline enforcement.
	Deadline time.Duration
}

// Config tunes the controller. The zero value is completed by
// DefaultConfig-equivalent defaults in NewController.
type Config struct {
	// Discovery and LCM bound the two admission classes.
	Discovery ClassLimits
	LCM       ClassLimits

	// Tick is the AIMD controller's adjustment interval.
	Tick time.Duration
	// LatencyTarget is the per-request latency (queue wait + service)
	// above which a class is considered overloaded; 0 derives it as a
	// quarter of the class deadline.
	LatencyTarget time.Duration
	// MinAccept floors the shedder's accept rate so a trickle of
	// requests always measures the current latency.
	MinAccept float64
	// RetryAfter is the advisory client backoff attached to shed
	// responses (rounded up to whole seconds on the wire).
	RetryAfter time.Duration

	// BrownoutEscalate is how long pressure must persist before the
	// ladder climbs one tier; BrownoutCalm how long calm must persist
	// before it steps back down.
	BrownoutEscalate time.Duration
	BrownoutCalm     time.Duration
	// BrownoutStaleness is the extra NodeState snapshot age tolerated
	// at TierStale and above (consumed by the registry wiring).
	BrownoutStaleness time.Duration

	// MaxBodyBytes caps request bodies on admission-wrapped handlers
	// via http.MaxBytesReader (consumed by the registry wiring).
	MaxBodyBytes int64
}

// DefaultConfig returns the production defaults: discovery sized for a
// read-heavy edge, LCM an order of magnitude tighter.
func DefaultConfig() Config {
	return Config{
		Discovery:         ClassLimits{MaxInFlight: 64, MaxQueue: 128, QueueTimeout: time.Second, Deadline: 2 * time.Second},
		LCM:               ClassLimits{MaxInFlight: 16, MaxQueue: 32, QueueTimeout: 2 * time.Second, Deadline: 5 * time.Second},
		Tick:              250 * time.Millisecond,
		MinAccept:         0.05,
		RetryAfter:        time.Second,
		BrownoutEscalate:  5 * time.Second,
		BrownoutCalm:      10 * time.Second,
		BrownoutStaleness: 2 * time.Minute,
		MaxBodyBytes:      8 << 20,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Discovery.MaxInFlight <= 0 {
		c.Discovery.MaxInFlight = d.Discovery.MaxInFlight
	}
	if c.Discovery.MaxQueue < 0 {
		c.Discovery.MaxQueue = 0
	} else if c.Discovery.MaxQueue == 0 {
		c.Discovery.MaxQueue = d.Discovery.MaxQueue
	}
	if c.Discovery.QueueTimeout <= 0 {
		c.Discovery.QueueTimeout = d.Discovery.QueueTimeout
	}
	if c.Discovery.Deadline == 0 {
		c.Discovery.Deadline = d.Discovery.Deadline
	}
	if c.LCM.MaxInFlight <= 0 {
		c.LCM.MaxInFlight = d.LCM.MaxInFlight
	}
	if c.LCM.MaxQueue < 0 {
		c.LCM.MaxQueue = 0
	} else if c.LCM.MaxQueue == 0 {
		c.LCM.MaxQueue = d.LCM.MaxQueue
	}
	if c.LCM.QueueTimeout <= 0 {
		c.LCM.QueueTimeout = d.LCM.QueueTimeout
	}
	if c.LCM.Deadline == 0 {
		c.LCM.Deadline = d.LCM.Deadline
	}
	if c.Tick <= 0 {
		c.Tick = d.Tick
	}
	if c.MinAccept <= 0 || c.MinAccept > 1 {
		c.MinAccept = d.MinAccept
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.BrownoutEscalate <= 0 {
		c.BrownoutEscalate = d.BrownoutEscalate
	}
	if c.BrownoutCalm <= 0 {
		c.BrownoutCalm = d.BrownoutCalm
	}
	if c.BrownoutStaleness <= 0 {
		c.BrownoutStaleness = d.BrownoutStaleness
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	return c
}

// AIMD shedder constants: multiplicative decrease on an overloaded tick,
// additive increase on a calm one, EWMA smoothing for the latency signal
// and its idle decay (so a drained class forgets old pain).
const (
	aimdDecrease  = 0.75
	aimdIncrease  = 0.05
	ewmaAlpha     = 0.3
	ewmaIdleDecay = 0.5
	// brownoutPressure is the accept rate at or below which a class
	// counts as pressured for the brownout ladder: the shedder has
	// halved at least twice and held there.
	brownoutPressure = 0.5
	// maxTickCatchup bounds the AIMD catch-up loop after a large
	// simulated time jump (time-of-day experiments jump hours).
	maxTickCatchup = 64
)

// Outcome is an admission decision.
type Outcome uint8

const (
	// Admitted: a free in-flight slot was granted; run now.
	Admitted Outcome = iota
	// Queued: all slots busy; the ticket waits FIFO for a slot.
	Queued
	// Shed: rejected early — the shedder's gate fired or the wait
	// queue is full. Respond 503 with Retry-After.
	Shed
)

// String names the outcome for experiment fingerprints.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case Queued:
		return "queued"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// ticketState tracks a queued ticket through the promote/cancel race;
// transitions happen under the owning class's mutex.
type ticketState uint8

const (
	ticketQueued ticketState = iota
	ticketPromoted
	ticketCanceled
)

// Ticket represents one queued request waiting for an in-flight slot.
type Ticket struct {
	class   Class
	arrived time.Time
	ready   chan struct{}
	state   ticketState // transitions under the owning classState.mu
}

// Class returns the ticket's admission class.
func (t *Ticket) Class() Class { return t.class }

// Arrived returns when the request first asked for admission; request
// latency is measured from here so queue wait counts against the class
// deadline signal.
func (t *Ticket) Arrived() time.Time { return t.arrived }

// Ready is closed when the ticket is promoted into an in-flight slot.
func (t *Ticket) Ready() <-chan struct{} { return t.ready }

// classState is one class's semaphore, queue, and shedder.
type classState struct {
	limits ClassLimits
	// target is the overload latency threshold in seconds.
	target float64
	// tick is the AIMD adjustment interval.
	tick time.Duration
	// minAccept floors the shedder.
	minAccept float64

	mu         sync.Mutex
	inflight   int       // guarded by mu
	queue      []*Ticket // guarded by mu
	acceptRate float64   // guarded by mu
	deficit    float64   // guarded by mu
	ewma       float64   // guarded by mu
	samples    int       // guarded by mu
	queueFull  bool      // guarded by mu
	lastTick   time.Time // guarded by mu
	pressured  bool      // guarded by mu

	admitted      metrics.Counter
	shed          metrics.Counter
	queuedTotal   metrics.Counter
	queueTimeouts metrics.Counter
	canceled      metrics.Counter
	deadlineMiss  metrics.Counter
}

// ClassStats is a scrape-time snapshot of one class.
type ClassStats struct {
	Admitted         int64
	Shed             int64
	Queued           int64
	QueueTimeouts    int64
	Canceled         int64
	DeadlineExceeded int64
	InFlight         int
	QueueDepth       int
	AcceptRate       float64
	LatencyEWMA      float64
}

// Controller is the admission controller for the registry serving edge.
// All methods are safe for concurrent use; the decision core (TryAdmit,
// Release, CancelQueued) is non-blocking so the deterministic flash-crowd
// simulator can drive it single-threaded, while the HTTP middleware in
// middleware.go adds the blocking wait on top.
type Controller struct {
	clock simclock.Clock
	cfg   Config
	log   *slog.Logger

	classes [numClasses]classState

	tierMu      sync.Mutex
	tier        Tier         // guarded by tierMu
	overSince   time.Time    // guarded by tierMu
	calmSince   time.Time    // guarded by tierMu
	onTier      []func(Tier) // guarded by tierMu
	tierNow     atomic.Int32 // lock-free mirror of tier for hot-path reads
	tierChanges metrics.Counter

	// Preserialized shed responses: the reject path must not allocate
	// (see middleware.go and the hotalloc/escapecheck gates).
	retryAfterHeader []string
	rejectJSON       []byte
	rejectSOAP       []byte
	jsonContentType  []string
	soapContentType  []string
}

// NewController builds a controller from cfg. clk must be the registry's
// clock; log may be nil.
func NewController(cfg Config, clk simclock.Clock, log *slog.Logger) *Controller {
	cfg = cfg.withDefaults()
	if clk == nil {
		clk = simclock.Real{}
	}
	c := &Controller{clock: clk, cfg: cfg, log: obs.OrNop(log)}
	limits := [numClasses]ClassLimits{ClassDiscovery: cfg.Discovery, ClassLCM: cfg.LCM}
	for class := range c.classes {
		cs := &c.classes[class]
		cs.limits = limits[class]
		cs.tick = cfg.Tick
		cs.minAccept = cfg.MinAccept
		target := cfg.LatencyTarget
		if target <= 0 {
			target = cs.limits.Deadline / 4
		}
		if target <= 0 {
			target = 500 * time.Millisecond
		}
		cs.target = target.Seconds()
		// Pre-publication, but lock anyway: acceptRate is guarded by mu
		// and the uncontended acquisition costs nothing at construction.
		cs.mu.Lock()
		cs.acceptRate = 1
		cs.mu.Unlock()
	}
	c.buildRejects()
	return c
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// RetryAfter returns the advisory backoff attached to shed responses.
func (c *Controller) RetryAfter() time.Duration { return c.cfg.RetryAfter }

// Limits returns the effective limits for class.
func (c *Controller) Limits(class Class) ClassLimits { return c.classes[class].limits }

// TryAdmit decides one arrival at time now without blocking:
//
//   - a free in-flight slot admits immediately (nil ticket);
//   - otherwise the shedder's deterministic gate may shed;
//   - otherwise the arrival joins the bounded FIFO queue (non-nil
//     ticket) or is shed when the queue is full.
//
// Shedding applies only to arrivals that would wait, so admitted
// throughput (goodput) tracks capacity while excess load bounces.
//
//repolint:hotpath admission decision runs on every discovery request
func (c *Controller) TryAdmit(class Class, now time.Time) (Outcome, *Ticket) {
	cs := &c.classes[class]
	cs.mu.Lock()
	ticked := cs.tickLocked(now)
	if cs.inflight < cs.limits.MaxInFlight {
		cs.inflight++
		cs.mu.Unlock()
		cs.admitted.Inc()
		if ticked {
			c.noteTier(now)
		}
		return Admitted, nil
	}
	// Saturated: apply the shedder's gate before queueing. The deficit
	// accumulator converts the accept rate into a deterministic drop
	// pattern (no RNG; see the norand invariant).
	cs.deficit += 1 - cs.acceptRate
	if cs.deficit >= 1 {
		cs.deficit--
		cs.mu.Unlock()
		cs.shed.Inc()
		if ticked {
			c.noteTier(now)
		}
		return Shed, nil
	}
	if len(cs.queue) >= cs.limits.MaxQueue {
		cs.queueFull = true
		cs.mu.Unlock()
		cs.shed.Inc()
		if ticked {
			c.noteTier(now)
		}
		return Shed, nil
	}
	t := &Ticket{class: class, arrived: now, ready: make(chan struct{})}
	cs.queue = append(cs.queue, t)
	cs.mu.Unlock()
	cs.queuedTotal.Inc()
	if ticked {
		c.noteTier(now)
	}
	return Queued, t
}

// Release returns an in-flight slot at time now. arrived is when the
// finishing request first asked for admission (TryAdmit time), so the
// latency sample fed to the shedder includes its queue wait. When the
// wait queue is non-empty the slot is handed straight to the head, whose
// Ready channel closes; the promoted ticket is returned so a
// single-threaded driver can schedule it without watching the channel.
//
//repolint:hotpath slot release runs on every admitted request
func (c *Controller) Release(class Class, arrived, now time.Time) *Ticket {
	cs := &c.classes[class]
	cs.mu.Lock()
	sample := now.Sub(arrived).Seconds()
	if sample >= 0 {
		if cs.samples == 0 && cs.ewma == 0 {
			cs.ewma = sample
		} else {
			cs.ewma += ewmaAlpha * (sample - cs.ewma)
		}
		cs.samples++
	}
	ticked := cs.tickLocked(now)
	var promoted *Ticket
	if len(cs.queue) > 0 {
		promoted = cs.queue[0]
		cs.queue = cs.queue[1:]
		promoted.state = ticketPromoted
		close(promoted.ready)
	} else {
		cs.inflight--
	}
	cs.mu.Unlock()
	if promoted != nil {
		cs.admitted.Inc()
	}
	if ticked {
		c.noteTier(now)
	}
	return promoted
}

// CancelQueued removes a still-queued ticket (queue timeout or client
// disconnect) and reports whether the removal won: false means the
// ticket was already promoted into a slot, which the caller now owns and
// must Release.
func (c *Controller) CancelQueued(t *Ticket, now time.Time, timedOut bool) bool {
	cs := &c.classes[t.class]
	cs.mu.Lock()
	if t.state != ticketQueued {
		cs.mu.Unlock()
		return false
	}
	for i, q := range cs.queue {
		if q == t {
			cs.queue = append(cs.queue[:i], cs.queue[i+1:]...)
			break
		}
	}
	t.state = ticketCanceled
	cs.queueFull = true // a queue casualty is pressure, even if depth dipped
	cs.mu.Unlock()
	if timedOut {
		cs.queueTimeouts.Inc()
	} else {
		cs.canceled.Inc()
	}
	return true
}

// NoteDeadlineExceeded records an admitted request that blew its budget.
func (c *Controller) NoteDeadlineExceeded(class Class) {
	c.classes[class].deadlineMiss.Inc()
}

// tickLocked advances the AIMD controller to now, one Tick at a time,
// and reports whether at least one adjustment ran (the caller then
// refreshes the brownout ladder outside the class lock). Called with
// cs.mu held.
func (cs *classState) tickLocked(now time.Time) bool {
	if cs.lastTick.IsZero() {
		cs.lastTick = now
		return false
	}
	ticked := false
	for i := 0; !cs.lastTick.Add(cs.tick).After(now); i++ {
		if i >= maxTickCatchup {
			cs.lastTick = now
			break
		}
		cs.lastTick = cs.lastTick.Add(cs.tick)
		overloaded := (cs.samples > 0 && cs.ewma > cs.target) || cs.queueFull
		if cs.samples == 0 {
			cs.ewma *= ewmaIdleDecay
		}
		cs.samples = 0
		cs.queueFull = false
		if overloaded {
			cs.acceptRate *= aimdDecrease
			if cs.acceptRate < cs.minAccept {
				cs.acceptRate = cs.minAccept
			}
		} else {
			cs.acceptRate += aimdIncrease
			if cs.acceptRate >= 1 {
				cs.acceptRate = 1
				cs.deficit = 0
			}
		}
		cs.pressured = cs.acceptRate <= brownoutPressure
		ticked = true
	}
	return ticked
}

// pressuredNow reports the class's last computed pressure flag.
func (cs *classState) pressuredNow() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.pressured
}

// noteTier re-evaluates the brownout ladder at time now: sustained
// pressure climbs one tier per BrownoutEscalate, sustained calm steps
// down one tier per BrownoutCalm. Runs outside the class locks.
func (c *Controller) noteTier(now time.Time) {
	pressured := false
	for i := range c.classes {
		if c.classes[i].pressuredNow() {
			pressured = true
			break
		}
	}
	var fire []func(Tier)
	var tier Tier
	changed := false
	c.tierMu.Lock()
	if pressured {
		c.calmSince = time.Time{}
		if c.overSince.IsZero() {
			c.overSince = now
		}
		if c.tier < TierStatic && now.Sub(c.overSince) >= c.cfg.BrownoutEscalate {
			c.tier++
			c.overSince = now
			changed = true
		}
	} else {
		c.overSince = time.Time{}
		if c.calmSince.IsZero() {
			c.calmSince = now
		}
		if c.tier > TierNominal && now.Sub(c.calmSince) >= c.cfg.BrownoutCalm {
			c.tier--
			c.calmSince = now
			changed = true
		}
	}
	tier = c.tier
	c.tierNow.Store(int32(tier))
	if changed {
		c.tierChanges.Inc()
		fire = c.onTier
	}
	c.tierMu.Unlock()
	if changed {
		c.logTier(tier)
		for _, fn := range fire {
			fn(tier)
		}
	}
}

// logTier records a ladder transition.
//
//repolint:coldpath tier transitions are seconds apart, never per-request
func (c *Controller) logTier(t Tier) {
	c.log.Info("brownout tier change", "tier", t.String())
}

// Tier returns the current brownout tier from a lock-free mirror, so the
// response cache can key every request by tier without touching tierMu.
//
//repolint:hotpath read per request by the response-cache fast path
func (c *Controller) Tier() Tier {
	return Tier(c.tierNow.Load())
}

// TierChanges returns how many ladder transitions have happened.
func (c *Controller) TierChanges() int64 { return c.tierChanges.Value() }

// OnTierChange registers fn to run (outside the controller's locks) on
// every ladder transition. Register before serving traffic.
func (c *Controller) OnTierChange(fn func(Tier)) {
	c.tierMu.Lock()
	defer c.tierMu.Unlock()
	c.onTier = append(c.onTier, fn)
}

// ClassStats snapshots one class for /registry/metrics and tests.
func (c *Controller) ClassStats(class Class) ClassStats {
	cs := &c.classes[class]
	cs.mu.Lock()
	st := ClassStats{
		InFlight:    cs.inflight,
		QueueDepth:  len(cs.queue),
		AcceptRate:  cs.acceptRate,
		LatencyEWMA: cs.ewma,
	}
	cs.mu.Unlock()
	st.Admitted = cs.admitted.Value()
	st.Shed = cs.shed.Value()
	st.Queued = cs.queuedTotal.Value()
	st.QueueTimeouts = cs.queueTimeouts.Value()
	st.Canceled = cs.canceled.Value()
	st.DeadlineExceeded = cs.deadlineMiss.Value()
	return st
}

// Deadline returns the effective budget for one request: the class
// default capped by the client's DeadlineHeader value (integer
// milliseconds; absent, unparseable, or non-positive values are
// ignored). 0 means no deadline.
func (c *Controller) Deadline(class Class, clientMs string) time.Duration {
	d := c.classes[class].limits.Deadline
	if clientMs == "" {
		return d
	}
	ms, err := strconv.Atoi(clientMs)
	if err != nil || ms <= 0 {
		return d
	}
	cd := time.Duration(ms) * time.Millisecond
	if d <= 0 || cd < d {
		return cd
	}
	return d
}
