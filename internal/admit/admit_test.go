package admit

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/soap"
)

var testEpoch = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

func testConfig() Config {
	return Config{
		Discovery:        ClassLimits{MaxInFlight: 2, MaxQueue: 2, QueueTimeout: 100 * time.Millisecond, Deadline: 250 * time.Millisecond},
		LCM:              ClassLimits{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 100 * time.Millisecond, Deadline: time.Second},
		Tick:             100 * time.Millisecond,
		MinAccept:        0.05,
		RetryAfter:       time.Second,
		BrownoutEscalate: 300 * time.Millisecond,
		BrownoutCalm:     500 * time.Millisecond,
	}
}

func TestAdmitUnderCapacity(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	now := clk.Now()
	for i := 0; i < 2; i++ {
		out, tk := c.TryAdmit(ClassDiscovery, now)
		if out != Admitted || tk != nil {
			t.Fatalf("arrival %d: got (%v, %v), want (Admitted, nil)", i, out, tk)
		}
	}
	st := c.ClassStats(ClassDiscovery)
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want 2 in flight / 2 admitted", st)
	}
	c.Release(ClassDiscovery, now, now.Add(time.Millisecond))
	if got := c.ClassStats(ClassDiscovery).InFlight; got != 1 {
		t.Fatalf("in flight after release = %d, want 1", got)
	}
}

func TestQueueFIFOPromotion(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	now := clk.Now()
	c.TryAdmit(ClassDiscovery, now)
	c.TryAdmit(ClassDiscovery, now)

	out1, t1 := c.TryAdmit(ClassDiscovery, now)
	out2, t2 := c.TryAdmit(ClassDiscovery, now)
	if out1 != Queued || out2 != Queued {
		t.Fatalf("saturated arrivals got %v/%v, want Queued/Queued", out1, out2)
	}
	// Queue is now full: the next saturated arrival sheds.
	if out, _ := c.TryAdmit(ClassDiscovery, now); out != Shed {
		t.Fatalf("queue-full arrival got %v, want Shed", out)
	}

	p := c.Release(ClassDiscovery, now, now.Add(time.Millisecond))
	if p != t1 {
		t.Fatalf("promoted %v, want the first queued ticket", p)
	}
	select {
	case <-t1.Ready():
	default:
		t.Fatal("promoted ticket's Ready channel is not closed")
	}
	if p := c.Release(ClassDiscovery, t1.Arrived(), now.Add(2*time.Millisecond)); p != t2 {
		t.Fatalf("second promotion = %v, want the second queued ticket", p)
	}
	if st := c.ClassStats(ClassDiscovery); st.InFlight != 2 || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v, want 2 in flight / empty queue", st)
	}
}

func TestCancelQueuedVsPromotionRace(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	now := clk.Now()
	c.TryAdmit(ClassDiscovery, now)
	c.TryAdmit(ClassDiscovery, now)
	_, tk := c.TryAdmit(ClassDiscovery, now)

	// Promote first; the late cancel must lose.
	if p := c.Release(ClassDiscovery, now, now); p != tk {
		t.Fatalf("promoted %v, want %v", p, tk)
	}
	if c.CancelQueued(tk, now, true) {
		t.Fatal("cancel after promotion reported success")
	}

	_, tk2 := c.TryAdmit(ClassDiscovery, now)
	if !c.CancelQueued(tk2, now, true) {
		t.Fatal("cancel of a queued ticket failed")
	}
	if p := c.Release(ClassDiscovery, now, now); p != nil {
		t.Fatalf("release promoted a canceled ticket: %v", p)
	}
	st := c.ClassStats(ClassDiscovery)
	if st.QueueTimeouts != 1 {
		t.Fatalf("queue timeouts = %d, want 1", st.QueueTimeouts)
	}
}

// driveOverload pins every discovery slot busy for d of simulated time
// while arrivals keep pounding the saturated class: queued tickets time
// out, completions report latencies far above target, and the AIMD
// controller ticks along the way. The slots are drained at the end so
// callers can model the crowd dispersing.
func driveOverload(c *Controller, clk *simclock.Manual, d time.Duration) {
	now := clk.Now()
	max := c.Limits(ClassDiscovery).MaxInFlight
	for i := 0; i < max; i++ {
		c.TryAdmit(ClassDiscovery, now)
	}
	step := 50 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		now = clk.Now()
		if out, tk := c.TryAdmit(ClassDiscovery, now); out == Queued {
			c.CancelQueued(tk, now, true) // queue casualty: timeout pressure
		}
		// One slow completion per step keeps latency samples flowing;
		// re-occupy the slot immediately to stay saturated.
		if p := c.Release(ClassDiscovery, now.Add(-2*time.Second), now); p == nil {
			c.TryAdmit(ClassDiscovery, now)
		}
		clk.Advance(step)
	}
	now = clk.Now()
	for i := 0; i < max; i++ {
		c.Release(ClassDiscovery, now, now)
	}
}

func TestAIMDShedsUnderOverloadAndRecovers(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	driveOverload(c, clk, 2*time.Second)
	st := c.ClassStats(ClassDiscovery)
	if st.AcceptRate > 0.1 {
		t.Fatalf("accept rate after sustained overload = %v, want <= 0.1", st.AcceptRate)
	}
	if st.Shed == 0 {
		t.Fatal("sustained overload shed nothing")
	}

	// Calm: fast completions, low arrival rate. The additive increase
	// must walk the accept rate back to 1.
	for i := 0; i < 60; i++ {
		now := clk.Now()
		if out, _ := c.TryAdmit(ClassDiscovery, now); out == Admitted {
			c.Release(ClassDiscovery, now, now.Add(time.Millisecond))
		}
		clk.Advance(200 * time.Millisecond)
	}
	if got := c.ClassStats(ClassDiscovery).AcceptRate; got != 1 {
		t.Fatalf("accept rate after calm = %v, want 1", got)
	}
}

func TestBrownoutLadderEscalatesAndRecovers(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	var transitions []Tier
	c.OnTierChange(func(tier Tier) { transitions = append(transitions, tier) })

	driveOverload(c, clk, 5*time.Second)
	if got := c.Tier(); got < TierStale {
		t.Fatalf("tier after sustained overload = %v, want >= TierStale", got)
	}
	for i := 0; i < 200; i++ {
		now := clk.Now()
		if out, _ := c.TryAdmit(ClassDiscovery, now); out == Admitted {
			c.Release(ClassDiscovery, now, now.Add(time.Millisecond))
		}
		clk.Advance(200 * time.Millisecond)
	}
	if got := c.Tier(); got != TierNominal {
		t.Fatalf("tier after calm = %v, want TierNominal", got)
	}
	if len(transitions) < 2 {
		t.Fatalf("transitions = %v, want an up and a down leg", transitions)
	}
	if c.TierChanges() != int64(len(transitions)) {
		t.Fatalf("TierChanges = %d, want %d", c.TierChanges(), len(transitions))
	}
}

func TestDeadlineHonorsClientHeader(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	if d := c.Deadline(ClassDiscovery, ""); d != 250*time.Millisecond {
		t.Fatalf("default deadline = %v, want 250ms", d)
	}
	if d := c.Deadline(ClassDiscovery, "100"); d != 100*time.Millisecond {
		t.Fatalf("client-tightened deadline = %v, want 100ms", d)
	}
	if d := c.Deadline(ClassDiscovery, "5000"); d != 250*time.Millisecond {
		t.Fatalf("client-loosened deadline = %v, want the 250ms class cap", d)
	}
	if d := c.Deadline(ClassDiscovery, "junk"); d != 250*time.Millisecond {
		t.Fatalf("unparseable header changed the deadline to %v", d)
	}
}

func TestWithBudgetExpiresOnManualClock(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	c := NewController(testConfig(), clk, nil)
	ctx, cancel, exceeded := c.WithBudget(context.Background(), 100*time.Millisecond)
	defer cancel()
	if exceeded() {
		t.Fatal("budget exceeded before any time passed")
	}
	clk.Advance(150 * time.Millisecond)
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("context not cancelled after the budget elapsed")
	}
	if !exceeded() {
		t.Fatal("exceeded() false after expiry")
	}
}

func TestWrapShedsWith503RetryAfter(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	cfg := testConfig()
	cfg.Discovery = ClassLimits{MaxInFlight: 1, MaxQueue: -1, QueueTimeout: time.Millisecond, Deadline: time.Second}
	c := NewController(cfg, clk, nil)

	release := make(chan struct{})
	started := make(chan struct{})
	h := c.Wrap(ClassDiscovery, RejectJSON, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	// Occupy the only slot.
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/registry/bindings", nil))
		first <- rec
	}()
	<-started

	// Zero queue capacity: the second request sheds immediately.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/registry/bindings", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"overloaded"`) {
		t.Fatalf("shed body = %q, want the preserialized JSON document", body)
	}

	close(release)
	if rec := <-first; rec.Code != http.StatusOK {
		t.Fatalf("admitted request status = %d, want 200", rec.Code)
	}
	st := c.ClassStats(ClassDiscovery)
	if st.Admitted != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 1 admitted / 1 shed", st)
	}
}

func TestWrapSOAPRejectIsTypedFault(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	cfg := testConfig()
	cfg.Discovery = ClassLimits{MaxInFlight: 1, MaxQueue: -1, QueueTimeout: time.Millisecond, Deadline: time.Second}
	c := NewController(cfg, clk, nil)
	now := clk.Now()
	c.TryAdmit(ClassDiscovery, now) // occupy the slot out of band

	h := c.Wrap(ClassDiscovery, RejectSOAP, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Fatal("handler ran for a shed request")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/soap/registry", strings.NewReader("<x/>")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	err := soap.Unmarshal(rec.Body.Bytes(), nil)
	f, ok := err.(*soap.Fault)
	if !ok {
		t.Fatalf("body did not decode to a fault: %v", err)
	}
	if f.Code != OverloadedFaultCode {
		t.Fatalf("faultcode = %q, want %q", f.Code, OverloadedFaultCode)
	}
}

func TestWrapNilControllerPassesThrough(t *testing.T) {
	var c *Controller
	h := c.Wrap(ClassDiscovery, RejectJSON, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("nil controller altered the response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestWrapEnforcesDeadline(t *testing.T) {
	clk := simclock.NewManual(testEpoch)
	cfg := testConfig()
	c := NewController(cfg, clk, nil)
	blocked := make(chan struct{})
	h := c.Wrap(ClassDiscovery, RejectJSON, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(blocked)
		<-r.Context().Done()
		w.WriteHeader(http.StatusGatewayTimeout)
	}))
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/registry/bindings", nil))
		done <- rec
	}()
	<-blocked
	clk.Advance(time.Second) // past the 250ms class deadline
	rec := <-done
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want the handler's 504", rec.Code)
	}
	if got := c.ClassStats(ClassDiscovery).DeadlineExceeded; got != 1 {
		t.Fatalf("deadline-exceeded count = %d, want 1", got)
	}
}
