package filterq

import (
	"testing"

	"repro/internal/sqlq"
)

func catalog() sqlq.Catalog {
	return sqlq.MapCatalog{
		"Service": &sqlq.MemTable{
			Cols: []string{"id", "name", "status", "bindings"},
			Data: []sqlq.Row{
				{"id": "1", "name": "NodeStatus", "status": "Approved", "bindings": float64(2)},
				{"id": "2", "name": "DemoSrv_Add", "status": "Submitted", "bindings": float64(1)},
				{"id": "3", "name": "DemoSrv_Del", "status": "Deprecated", "bindings": float64(0)},
				{"id": "4", "name": "Adder", "status": "Approved", "bindings": nil},
			},
		},
	}
}

func exec(t *testing.T, doc string) *sqlq.ResultSet {
	t.Helper()
	rs, err := Exec(catalog(), doc)
	if err != nil {
		t.Fatalf("Exec(%s): %v", doc, err)
	}
	return rs
}

func TestMatchAll(t *testing.T) {
	rs := exec(t, `<FilterQuery target="Service"/>`)
	if rs.Total != 4 || len(rs.Columns) != 4 {
		t.Fatalf("rs = %+v", rs)
	}
}

func TestSingleClause(t *testing.T) {
	rs := exec(t, `<FilterQuery target="Service"><Clause leftArgument="status" comparator="EQ" rightArgument="Approved"/></FilterQuery>`)
	if rs.Total != 2 {
		t.Fatalf("total = %d", rs.Total)
	}
}

func TestLikeAndNotLike(t *testing.T) {
	rs := exec(t, `<FilterQuery target="Service"><Clause leftArgument="name" comparator="LIKE" rightArgument="DemoSrv%"/></FilterQuery>`)
	if rs.Total != 2 {
		t.Fatalf("like total = %d", rs.Total)
	}
	rs = exec(t, `<FilterQuery target="Service"><Clause leftArgument="name" comparator="NOTLIKE" rightArgument="DemoSrv%"/></FilterQuery>`)
	if rs.Total != 2 {
		t.Fatalf("notlike total = %d", rs.Total)
	}
}

func TestCompoundAndOrNot(t *testing.T) {
	doc := `<FilterQuery target="Service">
	  <And>
	    <Clause leftArgument="name" comparator="LIKE" rightArgument="Demo%"/>
	    <Not><Clause leftArgument="status" comparator="EQ" rightArgument="Deprecated"/></Not>
	  </And>
	</FilterQuery>`
	rs := exec(t, doc)
	if rs.Total != 1 || rs.Rows[0][1] != "DemoSrv_Add" {
		t.Fatalf("rs = %+v", rs)
	}
	doc = `<FilterQuery target="Service">
	  <Or>
	    <Clause leftArgument="name" comparator="EQ" rightArgument="Adder"/>
	    <Clause leftArgument="name" comparator="EQ" rightArgument="NodeStatus"/>
	  </Or>
	</FilterQuery>`
	if rs := exec(t, doc); rs.Total != 2 {
		t.Fatalf("or total = %d", rs.Total)
	}
}

func TestImplicitAndOfSiblings(t *testing.T) {
	doc := `<FilterQuery target="Service">
	  <Clause leftArgument="name" comparator="LIKE" rightArgument="Demo%"/>
	  <Clause leftArgument="status" comparator="EQ" rightArgument="Submitted"/>
	</FilterQuery>`
	rs := exec(t, doc)
	if rs.Total != 1 {
		t.Fatalf("total = %d", rs.Total)
	}
}

func TestNumericComparison(t *testing.T) {
	doc := `<FilterQuery target="Service"><Clause leftArgument="bindings" comparator="GE" rightArgument="1"/></FilterQuery>`
	rs := exec(t, doc)
	// Adder has nil bindings and must not match.
	if rs.Total != 2 {
		t.Fatalf("total = %d", rs.Total)
	}
	doc = `<FilterQuery target="Service"><Clause leftArgument="bindings" comparator="LT" rightArgument="1"/></FilterQuery>`
	if rs := exec(t, doc); rs.Total != 1 {
		t.Fatalf("lt total = %d", rs.Total)
	}
}

func TestCaseInsensitiveStrings(t *testing.T) {
	doc := `<FilterQuery target="Service"><Clause leftArgument="name" comparator="EQ" rightArgument="nodestatus"/></FilterQuery>`
	if rs := exec(t, doc); rs.Total != 1 {
		t.Fatalf("total = %d", rs.Total)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`not xml`,
		`<FilterQuery/>`, // no target
		`<FilterQuery target="Service"><Clause comparator="EQ" rightArgument="x"/></FilterQuery>`,            // no left
		`<FilterQuery target="Service"><Clause leftArgument="name" comparator="QQ"/></FilterQuery>`,          // bad comparator
		`<FilterQuery target="Service"><Not/></FilterQuery>`,                                                 // empty Not
		`<FilterQuery target="Service"><And/></FilterQuery>`,                                                 // empty And
		`<FilterQuery target="Service"><Frob/></FilterQuery>`,                                                // unknown element
		`<FilterQuery target="Service"><Clause leftArgument="n" comparator="EQ"><X/></Clause></FilterQuery>`, // clause with child
	}
	for _, doc := range bad {
		if _, err := Parse(doc); err == nil {
			t.Errorf("Parse accepted %s", doc)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Exec(catalog(), `<FilterQuery target="Nope"/>`); err == nil {
		t.Fatal("unknown table accepted")
	}
	doc := `<FilterQuery target="Service"><Clause leftArgument="ghost" comparator="EQ" rightArgument="x"/></FilterQuery>`
	if _, err := Exec(catalog(), doc); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSQLAndFilterQueriesAgree(t *testing.T) {
	// The two syntaxes must see identical data (thesis: both are views
	// over the same AdhocQuery protocol).
	sqlRS, err := sqlq.Exec(catalog(), "SELECT id FROM Service WHERE name LIKE 'Demo%' AND status <> 'Deprecated'", nil)
	if err != nil {
		t.Fatal(err)
	}
	fRS := exec(t, `<FilterQuery target="Service">
	  <Clause leftArgument="name" comparator="LIKE" rightArgument="Demo%"/>
	  <Clause leftArgument="status" comparator="NE" rightArgument="Deprecated"/>
	</FilterQuery>`)
	if len(sqlRS.Rows) != fRS.Total {
		t.Fatalf("sql %d rows vs filter %d rows", len(sqlRS.Rows), fRS.Total)
	}
}
