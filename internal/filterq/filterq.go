// Package filterq implements the registry's XML Filter Query syntax — the
// second AdhocQuery syntax ebRS defines ("XML Filter Query syntax
// (discouraged, used rarely in freebXML Registry)", thesis §2.2.3). A
// filter query names a target object class and a boolean clause tree:
//
//	<FilterQuery target="Service">
//	  <And>
//	    <Clause leftArgument="name" comparator="LIKE" rightArgument="Demo%"/>
//	    <Not>
//	      <Clause leftArgument="status" comparator="EQ" rightArgument="Deprecated"/>
//	    </Not>
//	  </And>
//	</FilterQuery>
//
// Comparators: EQ, NE, LT, LE, GT, GE, LIKE, NOTLIKE. Right arguments are
// compared numerically when both sides coerce to numbers, otherwise as
// case-insensitive strings. Filter queries run against the same logical
// catalog as SQL queries, so both syntaxes see identical data.
package filterq

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlq"
)

// Query is a parsed filter query.
type Query struct {
	Target string
	Root   *Node // nil means match-all
}

// Node is one element of the clause tree.
type Node struct {
	XMLName  xml.Name
	Left     string `xml:"leftArgument,attr"`
	Comp     string `xml:"comparator,attr"`
	Right    string `xml:"rightArgument,attr"`
	Children []Node `xml:",any"`
}

type xmlQuery struct {
	XMLName  xml.Name `xml:"FilterQuery"`
	Target   string   `xml:"target,attr"`
	Children []Node   `xml:",any"`
}

// Parse decodes a filter query document.
func Parse(doc string) (*Query, error) {
	var xq xmlQuery
	if err := xml.Unmarshal([]byte(doc), &xq); err != nil {
		return nil, fmt.Errorf("filterq: malformed query: %w", err)
	}
	if xq.Target == "" {
		return nil, fmt.Errorf("filterq: missing target attribute")
	}
	q := &Query{Target: xq.Target}
	switch len(xq.Children) {
	case 0:
		// match-all
	case 1:
		q.Root = &xq.Children[0]
	default:
		// Multiple top-level clauses are an implicit And, matching how
		// ebRS composes sibling filters.
		q.Root = &Node{XMLName: xml.Name{Local: "And"}, Children: xq.Children}
	}
	if q.Root != nil {
		if err := validate(q.Root); err != nil {
			return nil, err
		}
	}
	return q, nil
}

func validate(n *Node) error {
	switch n.XMLName.Local {
	case "Clause":
		if n.Left == "" || n.Comp == "" {
			return fmt.Errorf("filterq: Clause needs leftArgument and comparator")
		}
		switch strings.ToUpper(n.Comp) {
		case "EQ", "NE", "LT", "LE", "GT", "GE", "LIKE", "NOTLIKE":
		default:
			return fmt.Errorf("filterq: unknown comparator %q", n.Comp)
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("filterq: Clause cannot have children")
		}
	case "And", "Or":
		if len(n.Children) == 0 {
			return fmt.Errorf("filterq: %s needs at least one child", n.XMLName.Local)
		}
		for i := range n.Children {
			if err := validate(&n.Children[i]); err != nil {
				return err
			}
		}
	case "Not":
		if len(n.Children) != 1 {
			return fmt.Errorf("filterq: Not needs exactly one child")
		}
		return validate(&n.Children[0])
	default:
		return fmt.Errorf("filterq: unknown element <%s>", n.XMLName.Local)
	}
	return nil
}

// Exec parses and runs a filter query against the catalog, returning the
// matching rows of the target table (all columns).
func Exec(catalog sqlq.Catalog, doc string) (*sqlq.ResultSet, error) {
	q, err := Parse(doc)
	if err != nil {
		return nil, err
	}
	return Run(catalog, q)
}

// Run executes a parsed query.
func Run(catalog sqlq.Catalog, q *Query) (*sqlq.ResultSet, error) {
	tbl, err := catalog.Table(q.Target)
	if err != nil {
		return nil, err
	}
	cols := tbl.Columns()
	colSet := make(map[string]bool, len(cols))
	for _, c := range cols {
		colSet[strings.ToLower(c)] = true
	}
	rs := &sqlq.ResultSet{Columns: cols}
	for _, row := range tbl.Rows() {
		ok := true
		if q.Root != nil {
			ok, err = eval(q.Root, row, colSet)
			if err != nil {
				return nil, err
			}
		}
		if !ok {
			continue
		}
		out := make([]sqlq.Value, len(cols))
		for i, c := range cols {
			out[i] = row[strings.ToLower(c)]
		}
		rs.Rows = append(rs.Rows, out)
	}
	rs.Total = len(rs.Rows)
	return rs, nil
}

func eval(n *Node, row sqlq.Row, colSet map[string]bool) (bool, error) {
	switch n.XMLName.Local {
	case "And":
		for i := range n.Children {
			ok, err := eval(&n.Children[i], row, colSet)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case "Or":
		for i := range n.Children {
			ok, err := eval(&n.Children[i], row, colSet)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case "Not":
		ok, err := eval(&n.Children[0], row, colSet)
		return !ok, err
	case "Clause":
		key := strings.ToLower(n.Left)
		if !colSet[key] {
			return false, fmt.Errorf("filterq: unknown column %q", n.Left)
		}
		return compare(row[key], strings.ToUpper(n.Comp), n.Right)
	default:
		return false, fmt.Errorf("filterq: unknown element <%s>", n.XMLName.Local)
	}
}

func compare(left sqlq.Value, comp, right string) (bool, error) {
	if left == nil {
		// NULL never satisfies a clause (mirrors SQL three-valued logic
		// collapsed to false).
		return false, nil
	}
	switch comp {
	case "LIKE", "NOTLIKE":
		ls := fmt.Sprintf("%v", left)
		m := likeMatch(strings.ToLower(ls), strings.ToLower(right))
		if comp == "NOTLIKE" {
			return !m, nil
		}
		return m, nil
	}
	c := 0
	if ln, ok := toNumber(left); ok {
		if rn, err := strconv.ParseFloat(right, 64); err == nil {
			switch {
			case ln < rn:
				c = -1
			case ln > rn:
				c = 1
			}
			return applyComparator(comp, c)
		}
	}
	ls := strings.ToLower(fmt.Sprintf("%v", left))
	c = strings.Compare(ls, strings.ToLower(right))
	return applyComparator(comp, c)
}

func applyComparator(comp string, c int) (bool, error) {
	switch comp {
	case "EQ":
		return c == 0, nil
	case "NE":
		return c != 0, nil
	case "LT":
		return c < 0, nil
	case "LE":
		return c <= 0, nil
	case "GT":
		return c > 0, nil
	case "GE":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("filterq: unknown comparator %q", comp)
	}
}

func toNumber(v sqlq.Value) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	default:
		return 0, false
	}
}

// likeMatch applies %/_ pattern matching (inputs already lower-cased).
func likeMatch(s, p string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
