package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/lcm"
	"repro/internal/simclock"
	"repro/internal/store"
)

// ErrReadOnly is the typed error LCM operations surface once durability
// has degraded: a disk-write failure flips the registry read-only rather
// than crashing it, so discovery keeps serving while writes are refused.
var ErrReadOnly = errors.New("wal: registry is read-only: durability degraded")

// DurableOptions tunes a Durable.
type DurableOptions struct {
	// Log tunes the underlying segmented log.
	Log Options
	// CheckpointBytes triggers a checkpoint once this many WAL bytes have
	// accumulated since the last one; 0 means DefaultCheckpointBytes,
	// negative disables the byte trigger.
	CheckpointBytes int64
	// CheckpointRecords likewise for record count; 0 means
	// DefaultCheckpointRecords, negative disables.
	CheckpointRecords int
}

// Checkpoint trigger defaults.
const (
	DefaultCheckpointBytes   = 8 << 20
	DefaultCheckpointRecords = 10000
)

// checkpointFormat versions the checkpoint file layout.
const checkpointFormat = 1

// checkpointFile is the JSON layout of a checkpoint-<seq>.json file: a
// store snapshot stamped with the WAL position it covers. Recovery loads
// the snapshot and replays only records strictly after (Segment, Offset).
type checkpointFile struct {
	Format   int             `json:"format"`
	Segment  uint64          `json:"segment"`
	Offset   int64           `json:"offset"`
	Snapshot json.RawMessage `json:"snapshot"`
}

func checkpointName(seq uint64) string { return fmt.Sprintf("checkpoint-%010d.json", seq) }

// listCheckpoints returns the ascending checkpoint sequence numbers in dir.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "checkpoint-%010d.json", &seq); err != nil || seq == 0 {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func readCheckpoint(path string) (checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return checkpointFile{}, fmt.Errorf("wal: read checkpoint: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return checkpointFile{}, fmt.Errorf("wal: decode checkpoint: %w", err)
	}
	if cf.Format != checkpointFormat {
		return checkpointFile{}, fmt.Errorf("wal: checkpoint format %d unsupported", cf.Format)
	}
	return cf, nil
}

// Durable is the registry's durability manager: the lcm.Durability
// implementation backed by a segmented WAL plus atomic checkpoints. One
// mutex serializes every registry write (the BeginWrite/EndWrite bracket)
// so the log's record order always equals the store's apply order.
type Durable struct {
	dir   string
	store *store.Store
	log   *Log
	clock simclock.Clock
	slog  *slog.Logger
	opts  DurableOptions

	mu           sync.Mutex
	recordsSince int      // guarded by mu — records appended since last checkpoint
	bytesSince   int64    // guarded by mu — bytes appended since last checkpoint
	ckptSeq      uint64   // guarded by mu — newest checkpoint's sequence number
	ckptPos      Position // guarded by mu — WAL position the newest checkpoint covers

	degraded    atomic.Bool
	replayed    atomic.Int64
	checkpoints atomic.Int64
	ckptSecBits atomic.Uint64
}

// OpenDurable opens the data directory, recovers the store from the
// newest valid checkpoint (older retained checkpoints are the fallback if
// the newest fails to decode), replays the WAL tail, and returns a
// manager ready for lcm.Manager.Durability. The store should be freshly
// constructed; recovery replaces its contents.
func OpenDurable(dir string, s *store.Store, opts DurableOptions) (*Durable, error) {
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	if opts.CheckpointRecords == 0 {
		opts.CheckpointRecords = DefaultCheckpointRecords
	}
	l, err := Open(dir, opts.Log)
	if err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, store: s, log: l, clock: l.clock, slog: l.slog, opts: opts}
	d.mu.Lock()
	defer d.mu.Unlock()

	seqs, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	var start Position
	for i := len(seqs) - 1; i >= 0; i-- {
		cf, err := readCheckpoint(filepath.Join(dir, checkpointName(seqs[i])))
		if err != nil {
			d.slog.Warn("skipping unreadable checkpoint", "seq", seqs[i], "err", err)
			continue
		}
		if err := s.Load(bytes.NewReader(cf.Snapshot)); err != nil {
			d.slog.Warn("skipping undecodable checkpoint", "seq", seqs[i], "err", err)
			continue
		}
		start = Position{Segment: cf.Segment, Offset: cf.Offset}
		d.ckptSeq, d.ckptPos = seqs[i], start
		break
	}
	if len(seqs) > 0 {
		d.ckptSeq = seqs[len(seqs)-1] // never reuse a sequence number
	}

	var count, replayBytes int64
	err = l.Replay(start, func(pos Position, payload []byte) error {
		if err := applyRecord(s, payload); err != nil {
			return err
		}
		count++
		replayBytes += int64(len(payload)) + recordHeaderLen
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.replayed.Store(count)
	d.recordsSince = int(count)
	d.bytesSince = replayBytes
	d.slog.Info("wal recovery complete",
		"dir", dir, "checkpoint", d.ckptSeq, "replayedRecords", count, "objects", s.Len())
	return d, nil
}

// BeginWrite opens the global write bracket. It fails fast with
// ErrReadOnly once durability has degraded.
func (d *Durable) BeginWrite() error {
	if d.degraded.Load() {
		return ErrReadOnly
	}
	d.mu.Lock()
	if d.degraded.Load() {
		d.mu.Unlock()
		return ErrReadOnly
	}
	return nil
}

// EndWrite closes the bracket opened by a successful BeginWrite.
func (d *Durable) EndWrite() { d.mu.Unlock() }

// Commit appends one mutation record inside an open bracket. When it
// returns nil the record is on disk per the fsync policy and the write
// may be acknowledged; an append failure degrades the registry.
func (d *Durable) Commit(m lcm.Mutation) error { return d.commitLocked(m) }

func (d *Durable) commitLocked(m lcm.Mutation) error {
	if d.degraded.Load() {
		return ErrReadOnly
	}
	payload, err := encodeMutation(m)
	if err != nil {
		return err
	}
	if _, err := d.log.Append(payload); err != nil {
		d.degrade("append", err)
		return fmt.Errorf("wal: %w: %w", ErrReadOnly, err)
	}
	d.recordsSince++
	d.bytesSince += int64(len(payload)) + recordHeaderLen
	if d.shouldCheckpointLocked() {
		// The mutation itself is durable; a checkpoint failure degrades
		// the registry (checkpointLocked does) but this write stands.
		if err := d.checkpointLocked(); err != nil {
			d.slog.Error("automatic checkpoint failed", "err", err)
		}
	}
	return nil
}

func (d *Durable) shouldCheckpointLocked() bool {
	if d.opts.CheckpointRecords > 0 && d.recordsSince >= d.opts.CheckpointRecords {
		return true
	}
	if d.opts.CheckpointBytes > 0 && d.bytesSince >= d.opts.CheckpointBytes {
		return true
	}
	return false
}

// Checkpoint forces a checkpoint now — boot (to cover bootstrap writes)
// and graceful shutdown use this.
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

// checkpointLocked snapshots the store, writes it atomically stamped with
// the current WAL position, then applies retention: the previous
// checkpoint is kept as the recovery fallback, anything older is deleted,
// and WAL segments wholly covered by the previous checkpoint are pruned.
func (d *Durable) checkpointLocked() error {
	started := d.clock.Now()
	pos := d.log.Pos()
	var buf bytes.Buffer
	if err := d.store.Save(&buf); err != nil {
		d.degrade("checkpoint snapshot", err)
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	data, err := json.Marshal(&checkpointFile{
		Format: checkpointFormat, Segment: pos.Segment, Offset: pos.Offset, Snapshot: buf.Bytes(),
	})
	if err != nil {
		return fmt.Errorf("wal: encode checkpoint: %w", err)
	}
	seq := d.ckptSeq + 1
	if err := WriteFileAtomic(filepath.Join(d.dir, checkpointName(seq)), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	}); err != nil {
		d.degrade("checkpoint write", err)
		return err
	}
	prevSeq, prunePos := d.ckptSeq, d.ckptPos
	d.ckptSeq, d.ckptPos = seq, pos
	d.recordsSince, d.bytesSince = 0, 0
	d.checkpoints.Add(1)
	d.ckptSecBits.Store(math.Float64bits(d.clock.Now().Sub(started).Seconds()))
	// Retention is best-effort: a failure here loses disk space, not data.
	if err := removeCheckpointsBelow(d.dir, prevSeq); err != nil {
		d.slog.Warn("stale checkpoint removal failed", "err", err)
	}
	if _, err := d.log.Prune(prunePos); err != nil {
		d.slog.Warn("wal segment prune failed", "err", err)
	}
	d.slog.Info("checkpoint written", "seq", seq, "pos", pos.String(), "bytes", len(data))
	return nil
}

// removeCheckpointsBelow deletes checkpoint files with sequence < keep.
func removeCheckpointsBelow(dir string, keep uint64) error {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq >= keep {
			break
		}
		if err := os.Remove(filepath.Join(dir, checkpointName(seq))); err != nil {
			return fmt.Errorf("wal: remove checkpoint %d: %w", seq, err)
		}
	}
	return nil
}

// degrade flips the registry read-only after a disk-write failure.
func (d *Durable) degrade(op string, err error) {
	if d.degraded.CompareAndSwap(false, true) {
		d.slog.Error("durability degraded: registry is now read-only", "op", op, "err", err)
	}
}

// ForceReadOnly degrades durability by hand — the operator's big red
// button and the degraded-mode test hook.
func (d *Durable) ForceReadOnly(err error) { d.degrade("forced", err) }

// Degraded reports whether the registry has been flipped read-only.
func (d *Durable) Degraded() bool { return d.degraded.Load() }

// WAL exposes the underlying log for metrics.
func (d *Durable) WAL() *Log { return d.log }

// ReplayedRecords returns how many WAL records boot recovery applied.
func (d *Durable) ReplayedRecords() int64 { return d.replayed.Load() }

// Checkpoints returns how many checkpoints were written since open.
func (d *Durable) Checkpoints() int64 { return d.checkpoints.Load() }

// LastCheckpointSeconds returns the wall time of the latest checkpoint.
func (d *Durable) LastCheckpointSeconds() float64 {
	return math.Float64frombits(d.ckptSecBits.Load())
}

// CheckpointPos returns the WAL position covered by the newest checkpoint.
func (d *Durable) CheckpointPos() Position {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ckptPos
}

// NewestCheckpoint returns the raw bytes of the newest checkpoint file
// and the WAL position it covers — the follower bootstrap payload. It
// fails if no checkpoint has been written yet.
func (d *Durable) NewestCheckpoint() (Position, []byte, error) {
	d.mu.Lock()
	seq, pos := d.ckptSeq, d.ckptPos
	d.mu.Unlock()
	if seq == 0 {
		return Position{}, nil, fmt.Errorf("wal: no checkpoint written yet")
	}
	data, err := os.ReadFile(filepath.Join(d.dir, checkpointName(seq)))
	if err != nil {
		return Position{}, nil, fmt.Errorf("wal: read checkpoint: %w", err)
	}
	return pos, data, nil
}

// ParseCheckpoint decodes checkpoint-file bytes (as served by the leader
// bootstrap endpoint) into the WAL position it covers and the embedded
// store snapshot.
func ParseCheckpoint(data []byte) (Position, json.RawMessage, error) {
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return Position{}, nil, fmt.Errorf("wal: decode checkpoint: %w", err)
	}
	if cf.Format != checkpointFormat {
		return Position{}, nil, fmt.Errorf("wal: checkpoint format %d unsupported", cf.Format)
	}
	return Position{Segment: cf.Segment, Offset: cf.Offset}, cf.Snapshot, nil
}

// Close checkpoints (unless degraded) and closes the log.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.degraded.Load() {
		if err := d.checkpointLocked(); err != nil {
			return err
		}
	}
	return d.log.Close()
}
