package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/simclock"
)

func mustAppend(t *testing.T, l *Log, payload []byte) Position {
	t.Helper()
	pos, err := l.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	return pos
}

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	err := l.Replay(Position{}, func(pos Position, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		mustAppend(t, l, p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if a := l2.Appends(); a != 0 {
		t.Fatalf("fresh log reports %d appends", a)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, []byte("alpha"))
	mustAppend(t, l, []byte("beta"))
	valid := l.Pos()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: garbage that is not a complete record.
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
	if p := l2.Pos(); p != valid {
		t.Fatalf("cursor after truncation = %v, want %v", p, valid)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != valid.Offset {
		t.Fatalf("file size %d, want truncated to %d", fi.Size(), valid.Offset)
	}
	// The log must accept appends on the clean boundary.
	mustAppend(t, l2, []byte("gamma"))
	if got := replayAll(t, l2); len(got) != 3 || string(got[2]) != "gamma" {
		t.Fatalf("after post-truncation append got %q", got)
	}
}

func TestOpenDropsCorruptTailRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, []byte("keep-me"))
	mid := l.Pos()
	mustAppend(t, l, []byte("corrupt-me"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the last record; its CRC must catch it.
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mid.Offset+recordHeaderLen] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "keep-me" {
		t.Fatalf("replay after corruption = %q, want only keep-me", got)
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ {
		mustAppend(t, l, payload)
	}
	if n := l.SegmentCount(); n < 3 {
		t.Fatalf("segment count %d, want rotation to at least 3", n)
	}
	if got := replayAll(t, l); len(got) != 6 {
		t.Fatalf("replayed %d records across segments, want 6", len(got))
	}
	tail := l.Pos()
	removed, err := l.Prune(tail)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("prune removed nothing")
	}
	if n := l.SegmentCount(); n != 1 {
		t.Fatalf("segment count after prune = %d, want 1 (the tail)", n)
	}
	// Records after the prune point still replay.
	mustAppend(t, l, []byte("tail"))
	err = l.Replay(tail, func(pos Position, p []byte) error {
		if string(p) != "tail" {
			return fmt.Errorf("unexpected record %q", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 0; i < 5; i++ {
			mustAppend(t, l, []byte("p"))
		}
		if f := l.Fsyncs(); f != 5 {
			t.Fatalf("fsyncs = %d, want one per append", f)
		}
	})
	t.Run("never", func(t *testing.T) {
		l, err := Open(t.TempDir(), Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := 0; i < 5; i++ {
			mustAppend(t, l, []byte("p"))
		}
		if f := l.Fsyncs(); f != 0 {
			t.Fatalf("fsyncs = %d, want 0 before Close", f)
		}
	})
	t.Run("interval", func(t *testing.T) {
		clk := simclock.NewManual(time.Unix(1_700_000_000, 0))
		l, err := Open(t.TempDir(), Options{Fsync: FsyncInterval, FsyncInterval: time.Second, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		mustAppend(t, l, []byte("a"))
		mustAppend(t, l, []byte("b"))
		if f := l.Fsyncs(); f != 0 {
			t.Fatalf("fsyncs before interval elapsed = %d, want 0", f)
		}
		clk.Advance(time.Second)
		mustAppend(t, l, []byte("c"))
		if f := l.Fsyncs(); f != 1 {
			t.Fatalf("fsyncs after interval elapsed = %d, want 1", f)
		}
		mustAppend(t, l, []byte("d"))
		if f := l.Fsyncs(); f != 1 {
			t.Fatalf("fsyncs = %d, want still 1 inside the new window", f)
		}
	})
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the previous file intact and no temp
	// files behind.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		return fmt.Errorf("simulated write failure")
	}); err == nil {
		t.Fatal("expected the failing write to error")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v1" {
		t.Fatalf("file content after failed rewrite = %q, want v1", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries (temp leak?), want 1", len(entries))
	}
}
