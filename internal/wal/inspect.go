package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SegmentInfo summarizes one segment file for offline inspection.
type SegmentInfo struct {
	Index      uint64
	Bytes      int64 // valid prefix length
	Records    int
	TornBytes  int64 // trailing bytes past the last intact record
	TotalBytes int64 // file size on disk
}

// CheckpointInfo summarizes one checkpoint file.
type CheckpointInfo struct {
	Seq           uint64
	Segment       uint64
	Offset        int64
	SnapshotBytes int
	Err           string // non-empty when the file is unreadable/invalid
}

// Info is the result of Inspect.
type Info struct {
	Dir         string
	Segments    []SegmentInfo
	Checkpoints []CheckpointInfo
}

// Inspect reads a data directory without mutating it (no torn-tail
// truncation, no locks) and reports segment and checkpoint health —
// the engine behind `regctl wal inspect`.
func Inspect(dir string) (Info, error) {
	info := Info{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return Info{}, err
	}
	for _, seg := range segs {
		path := filepath.Join(dir, segmentName(seg))
		valid, clean, records, err := scanSegment(path, nil)
		if err != nil {
			return Info{}, err
		}
		si := SegmentInfo{Index: seg, Bytes: valid, Records: records, TotalBytes: valid}
		if !clean {
			fi, err := statSize(path)
			if err != nil {
				return Info{}, err
			}
			si.TotalBytes = fi
			si.TornBytes = fi - valid
		}
		info.Segments = append(info.Segments, si)
	}
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return Info{}, err
	}
	for _, seq := range seqs {
		ci := CheckpointInfo{Seq: seq}
		cf, err := readCheckpoint(filepath.Join(dir, checkpointName(seq)))
		if err != nil {
			ci.Err = err.Error()
		} else {
			ci.Segment, ci.Offset, ci.SnapshotBytes = cf.Segment, cf.Offset, len(cf.Snapshot)
		}
		info.Checkpoints = append(info.Checkpoints, ci)
	}
	return info, nil
}

// RecordInfo summarizes one decoded WAL record for `regctl wal dump`.
type RecordInfo struct {
	Pos           Position // position just past the record
	Bytes         int      // payload length
	Op            string
	PutIDs        []string // "Kind/id" per stored object
	Deletes       []string
	ContentPut    string
	ContentDelete string
}

// Dump walks every intact record in the directory in log order, calling
// fn per record. Like Inspect it is read-only: a torn tail is skipped,
// not truncated.
func Dump(dir string, fn func(RecordInfo) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		path := filepath.Join(dir, segmentName(seg))
		_, _, _, err := scanSegment(path, func(start, end int64, payload []byte) error {
			ri := RecordInfo{Pos: Position{Segment: seg, Offset: end}, Bytes: len(payload)}
			var rec walRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				ri.Op = "undecodable: " + err.Error()
				return fn(ri)
			}
			ri.Op = rec.Op
			ri.Deletes = rec.Deletes
			ri.ContentPut = rec.ContentPut
			ri.ContentDelete = rec.ContentDelete
			for _, env := range rec.Puts {
				var base struct{ ID string }
				if err := json.Unmarshal(env.Data, &base); err == nil {
					ri.PutIDs = append(ri.PutIDs, env.Kind+"/"+base.ID)
				}
			}
			return fn(ri)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// statSize returns the on-disk size of path.
func statSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	return fi.Size(), nil
}
