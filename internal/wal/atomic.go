package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes path by streaming into a temp file in the same
// directory, fsyncing, then renaming over path — a crash leaves either
// the old complete file or the new complete file, never a torn mix. This
// helper is the only sanctioned way to write checkpoint/snapshot files;
// the repolint atomicwrite analyzer flags bare os.Create of such paths.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: atomic write %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: atomic write %s: close: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: atomic write %s: rename: %w", path, err)
	}
	committed = true
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems refuse it, and the data file is already safe.
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}
