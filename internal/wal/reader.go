package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrPositionPruned reports that a requested read position lies below the
// oldest live segment: a checkpoint already covered it and Prune removed
// the file. A follower that sees this cannot resume by replay and must
// re-bootstrap from the newest checkpoint.
var ErrPositionPruned = errors.New("wal: position pruned")

// ErrEndOfLog is the Reader.Next sentinel at the committed tail: no
// record is available yet. Callers long-poll via AppendSignal and retry.
var ErrEndOfLog = errors.New("wal: end of committed log")

// StreamRecord is one record handed to a streaming reader: the payload,
// the position just past it (the resume token), and its sequence number.
type StreamRecord struct {
	Pos     Position
	Seq     uint64
	Payload []byte
}

// Reader iterates committed records concurrently with appends, rotation,
// and pruning. It opens its own file handles, so a segment pruned while
// being read keeps serving from the open descriptor; only advancing into
// a segment that no longer exists surfaces ErrPositionPruned. A Reader is
// not safe for concurrent use by multiple goroutines.
type Reader struct {
	l   *Log
	pos Position // offset just past the last consumed record
	seq uint64   // sequence number of the last consumed record
	f   *os.File // open segment file for pos.Segment; nil until first read
}

// OpenReaderAt positions a Reader to yield records strictly after pos.
// The zero position means the start of the log; if records before pos
// have already been pruned it returns ErrPositionPruned, and a position
// that does not land on a record boundary is rejected outright.
func (l *Log) OpenReaderAt(pos Position) (*Reader, error) {
	l.mu.Lock()
	oldest := l.segments[0]
	tail := l.seg
	tailOff := l.off
	base, live := l.segStart[pos.Segment]
	l.mu.Unlock()

	if pos.IsZero() {
		if oldest > 1 {
			return nil, ErrPositionPruned
		}
		return &Reader{l: l, pos: Position{Segment: 1, Offset: 0}}, nil
	}
	if pos.Segment < oldest {
		return nil, ErrPositionPruned
	}
	if pos.Segment > tail || (pos.Segment == tail && pos.Offset > tailOff) {
		return nil, fmt.Errorf("wal: position %s is past the committed tail", pos)
	}
	if !live {
		// Between oldest and tail every index exists (rotation is +1), so
		// an unknown segment here means a concurrent prune won the race.
		return nil, ErrPositionPruned
	}
	if pos.Offset == 0 {
		return &Reader{l: l, pos: pos, seq: base}, nil
	}
	// Count the records before pos to seed the sequence counter, and
	// verify pos lands exactly on a record boundary.
	var before uint64
	landed := false
	_, _, _, err := scanSegment(filepath.Join(l.dir, segmentName(pos.Segment)), func(start, end int64, payload []byte) error {
		if end <= pos.Offset {
			before++
		}
		if end == pos.Offset {
			landed = true
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrPositionPruned
		}
		return nil, err
	}
	if !landed {
		return nil, fmt.Errorf("wal: position %s is not a record boundary", pos)
	}
	return &Reader{l: l, pos: pos, seq: base + before}, nil
}

// Next returns the next committed record, ErrEndOfLog at the committed
// tail, or ErrPositionPruned if the segment it must advance into has been
// pruned underneath it.
func (r *Reader) Next() (StreamRecord, error) {
	bound, _ := r.l.Committed()
	var hdr [recordHeaderLen]byte
	for {
		sealed := r.pos.Segment < bound.Segment
		if !sealed && r.pos.Offset >= bound.Offset {
			return StreamRecord{}, ErrEndOfLog
		}
		if r.f == nil {
			f, err := os.Open(filepath.Join(r.l.dir, segmentName(r.pos.Segment)))
			if err != nil {
				if errors.Is(err, os.ErrNotExist) {
					return StreamRecord{}, ErrPositionPruned
				}
				return StreamRecord{}, fmt.Errorf("wal: open segment: %w", err)
			}
			r.f = f
		}
		n, err := r.f.ReadAt(hdr[:], r.pos.Offset)
		if n < recordHeaderLen {
			if sealed {
				// Sealed segments end on a record boundary; a short read
				// means we consumed it all — advance to the next segment.
				r.f.Close()
				r.f = nil
				r.pos = Position{Segment: r.pos.Segment + 1, Offset: 0}
				continue
			}
			return StreamRecord{}, fmt.Errorf("wal: read record header at %s: %w", r.pos, err)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordBytes {
			return StreamRecord{}, fmt.Errorf("wal: corrupt record length at %s", r.pos)
		}
		payload := make([]byte, length)
		if _, err := r.f.ReadAt(payload, r.pos.Offset+recordHeaderLen); err != nil {
			return StreamRecord{}, fmt.Errorf("wal: read record at %s: %w", r.pos, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return StreamRecord{}, fmt.Errorf("wal: record checksum mismatch at %s", r.pos)
		}
		r.pos.Offset += recordHeaderLen + length
		r.seq++
		return StreamRecord{Pos: r.pos, Seq: r.seq, Payload: payload}, nil
	}
}

// Pos returns the offset just past the last record Next returned.
func (r *Reader) Pos() Position { return r.pos }

// Seq returns the sequence number of the last record Next returned.
func (r *Reader) Seq() uint64 { return r.seq }

// Close releases the reader's open segment handle.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
