package wal

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/lcm"
	"repro/internal/rim"
	"repro/internal/store"
)

// walRecord is the JSON payload framed into one WAL record: a logical
// mutation carrying full post-state (see lcm.Mutation). Replay is
// idempotent — Puts overwrite, Deletes ignore already-missing ids — so a
// record also covered by a checkpoint applies harmlessly.
type walRecord struct {
	Op            string           `json:"op"`
	Puts          []store.Envelope `json:"puts,omitempty"`
	Deletes       []string         `json:"deletes,omitempty"`
	ContentPut    string           `json:"contentPut,omitempty"`
	Content       []byte           `json:"content,omitempty"`
	ContentDelete string           `json:"contentDelete,omitempty"`
}

// encodeMutation serializes an acknowledged mutation for appending.
func encodeMutation(m lcm.Mutation) ([]byte, error) {
	rec := walRecord{
		Op:            m.Op,
		Deletes:       m.Deletes,
		ContentPut:    m.ContentPutID,
		Content:       m.Content,
		ContentDelete: m.ContentDeleteID,
	}
	for _, o := range m.Puts {
		env, err := store.EncodeObject(o)
		if err != nil {
			return nil, fmt.Errorf("wal: encode mutation: %w", err)
		}
		rec.Puts = append(rec.Puts, env)
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode mutation: %w", err)
	}
	return data, nil
}

// applyRecord replays one record's payload into the store.
func applyRecord(s *store.Store, payload []byte) error {
	_, err := ApplyRecord(s, payload)
	return err
}

// ApplyRecord replays one record's payload into the store and returns the
// object ids it touched, so a replication follower can invalidate derived
// caches exactly as the leader's post-write hook does.
func ApplyRecord(s *store.Store, payload []byte) ([]string, error) {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("wal: decode record: %w", err)
	}
	ids := make([]string, 0, len(rec.Puts)+len(rec.Deletes))
	for _, env := range rec.Puts {
		o, err := env.Decode()
		if err != nil {
			return nil, fmt.Errorf("wal: replay %s: %w", rec.Op, err)
		}
		if err := s.Put(o); err != nil {
			return nil, fmt.Errorf("wal: replay %s: %w", rec.Op, err)
		}
		ids = append(ids, rim.ID(o))
	}
	for _, id := range rec.Deletes {
		if err := s.Delete(id); err != nil && !errors.Is(err, store.ErrNotFound) {
			return nil, fmt.Errorf("wal: replay %s: %w", rec.Op, err)
		}
		ids = append(ids, id)
	}
	if rec.ContentPut != "" {
		s.PutContent(rec.ContentPut, rec.Content)
	}
	if rec.ContentDelete != "" {
		s.DeleteContent(rec.ContentDelete)
	}
	return ids, nil
}
