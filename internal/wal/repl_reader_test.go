package wal

// Streaming-reader tests for the replication subsystem: boundary
// validation, sequence accounting, rotation handling, and the seeded
// prune-race harness that runs readers concurrently with appends,
// rotation, and pruning under -race.

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

func mustOpenReader(t *testing.T, l *Log, pos Position) *Reader {
	t.Helper()
	rd, err := l.OpenReaderAt(pos)
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

func TestReplReaderStreamsInOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, l, []byte(fmt.Sprintf("rec-%02d", i)))
	}

	rd := mustOpenReader(t, l, Position{})
	defer rd.Close()
	for i := 0; i < n; i++ {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got := string(rec.Payload); got != fmt.Sprintf("rec-%02d", i) {
			t.Fatalf("record %d payload = %q", i, got)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
	}
	if _, err := rd.Next(); !errors.Is(err, ErrEndOfLog) {
		t.Fatalf("Next at tail = %v, want ErrEndOfLog", err)
	}

	// New appends become visible to the same reader without reopening.
	mustAppend(t, l, []byte("late"))
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Payload) != "late" || rec.Seq != n+1 {
		t.Fatalf("late record = %q seq %d", rec.Payload, rec.Seq)
	}
}

func TestReplReaderResumesAtBoundary(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, []byte("one"))
	mid := mustAppend(t, l, []byte("two"))
	mustAppend(t, l, []byte("three"))

	rd := mustOpenReader(t, l, mid)
	defer rd.Close()
	if rd.Seq() != 2 {
		t.Fatalf("resume seq = %d, want 2", rd.Seq())
	}
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Payload) != "three" || rec.Seq != 3 {
		t.Fatalf("resumed record = %q seq %d", rec.Payload, rec.Seq)
	}

	if _, err := l.OpenReaderAt(Position{Segment: mid.Segment, Offset: mid.Offset - 1}); err == nil {
		t.Fatal("non-boundary position accepted")
	}
	if _, err := l.OpenReaderAt(Position{Segment: mid.Segment, Offset: 1 << 30}); err == nil {
		t.Fatal("past-tail position accepted")
	}
}

func TestReplReaderAdvancesAcrossSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 12
	for i := 0; i < n; i++ {
		mustAppend(t, l, []byte(fmt.Sprintf("seg-walk-%02d", i)))
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("want >= 3 segments, have %d", l.SegmentCount())
	}
	rd := mustOpenReader(t, l, Position{})
	defer rd.Close()
	for i := 0; i < n; i++ {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d", i, rec.Seq)
		}
	}
}

func TestReplReaderPrunedPositions(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		mustAppend(t, l, []byte(fmt.Sprintf("prunable-%02d", i)))
	}
	tail := l.Pos()
	if _, err := l.Prune(tail); err != nil {
		t.Fatal(err)
	}
	if _, err := l.OpenReaderAt(Position{}); !errors.Is(err, ErrPositionPruned) {
		t.Fatalf("OpenReaderAt(zero) after prune = %v, want ErrPositionPruned", err)
	}
	if _, err := l.OpenReaderAt(Position{Segment: 1, Offset: 0}); !errors.Is(err, ErrPositionPruned) {
		t.Fatalf("OpenReaderAt(pruned seg) = %v, want ErrPositionPruned", err)
	}
	rd := mustOpenReader(t, l, tail)
	defer rd.Close()
	mustAppend(t, l, []byte("after-prune"))
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Payload) != "after-prune" {
		t.Fatalf("post-prune record = %q", rec.Payload)
	}
}

// TestReplWALReaderPruneRace is the seeded concurrency harness: a writer
// appends (rotating often) while a pruner aggressively removes sealed
// segments and readers tail the log. Every reader must observe records in
// order with correct global sequence numbers, or fail cleanly with
// ErrPositionPruned and re-attach at the committed tail — never a torn
// read, a skipped record within a stretch, or a crash.
func TestReplWALReaderPruneRace(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			l, err := Open(dir, Options{SegmentBytes: 128, Fsync: FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			const total = 400
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < total; i++ {
					pad := make([]byte, rng.Intn(24))
					payload := []byte(strconv.Itoa(i) + ":" + string(pad))
					if _, err := l.Append(payload); err != nil {
						t.Errorf("append %d: %v", i, err)
						return
					}
					if rng.Intn(8) == 0 {
						// Aggressive retention: drop everything below the
						// tail segment, racing the readers.
						if _, err := l.Prune(l.Pos()); err != nil {
							t.Errorf("prune: %v", err)
							return
						}
					}
				}
			}()

			var wg sync.WaitGroup
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var rd *Reader
					for rd == nil {
						// The initial attach races the pruner too.
						pos, _ := l.Committed()
						var err error
						rd, err = l.OpenReaderAt(pos)
						if err != nil && !errors.Is(err, ErrPositionPruned) {
							t.Errorf("reader %d open: %v", r, err)
							return
						}
					}
					defer func() {
						if rd != nil {
							rd.Close()
						}
					}()
					last := -1 // payload index of the previous record in this stretch
					for {
						rec, err := rd.Next()
						switch {
						case err == nil:
							idx, perr := strconv.Atoi(string(rec.Payload[:indexByte(rec.Payload, ':')]))
							if perr != nil {
								t.Errorf("reader %d: unparseable payload %q", r, rec.Payload)
								return
							}
							// Global invariant: record i (0-based) is the
							// (i+1)-th append, whatever position we
							// attached at.
							if rec.Seq != uint64(idx+1) {
								t.Errorf("reader %d: record %d has seq %d", r, idx, rec.Seq)
								return
							}
							if last >= 0 && idx != last+1 {
								t.Errorf("reader %d: gap within stretch: %d after %d", r, idx, last)
								return
							}
							last = idx
							if idx == total-1 {
								return
							}
						case errors.Is(err, ErrPositionPruned):
							// Re-attach at the committed tail, as the
							// replication leader's follower would after a
							// 410: a new stretch begins. Another prune can
							// win the race again, so retry.
							rd.Close()
							rd = nil
							for rd == nil {
								pos, _ := l.Committed()
								rd, err = l.OpenReaderAt(pos)
								if err != nil && !errors.Is(err, ErrPositionPruned) {
									t.Errorf("reader %d reattach: %v", r, err)
									return
								}
							}
							last = -1
						case errors.Is(err, ErrEndOfLog):
							select {
							case <-writerDone:
								if p, _ := l.Committed(); !rd.Pos().Less(p) {
									return
								}
							default:
							}
						default:
							t.Errorf("reader %d: %v", r, err)
							return
						}
					}
				}(r)
			}
			wg.Wait()
			<-writerDone
		})
	}
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return len(b)
}
