// Package wal gives the registry the durability role Apache Derby played
// under freebXML (thesis §2.2.3): a segmented, binary write-ahead log of
// logical LCM mutations plus atomic JSON checkpoints, so a host crash
// loses no acknowledged write. The reproduction previously persisted only
// a snapshot written on graceful shutdown; federation (PAPERS.md, "On the
// Cooperation of Independent Registries") assumes member catalogs that
// survive restarts, which is exactly what this package provides.
//
// Layout on disk, inside one data directory:
//
//	wal-0000000000000001.seg   length-prefixed, CRC32C-checked records
//	wal-0000000000000002.seg   ...
//	checkpoint-0000000001.json JSON snapshot + the WAL position it covers
//
// Each record is [length uint32 LE][crc32c uint32 LE][payload]. A crash
// can tear only the record being written when the process died; Open
// truncates that torn tail, and recovery replays every intact record after
// the newest valid checkpoint. Fsync policy is configurable: always (one
// fsync per append), interval (at most one fsync per interval on the
// injected clock), or never (leave flushing to the OS).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// FsyncPolicy selects when appends are flushed to stable storage.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncAlways syncs after every append: an acknowledged write is on
	// disk before the HTTP response leaves.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per Options.FsyncInterval, checked
	// on append — a bounded-loss middle ground.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever
)

// String names the policy as the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "unknown-fsync-policy"
	}
}

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
	}
}

// Position addresses a byte boundary in the log: the offset just past a
// record in a given segment. Positions are comparable with Less; the zero
// Position precedes every record.
type Position struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// Less orders positions by segment then offset.
func (p Position) Less(q Position) bool {
	if p.Segment != q.Segment {
		return p.Segment < q.Segment
	}
	return p.Offset < q.Offset
}

// IsZero reports whether p is the start-of-log position.
func (p Position) IsZero() bool { return p.Segment == 0 && p.Offset == 0 }

// String renders seg:off for logs and regctl.
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Segment, p.Offset) }

// ParsePosition parses the seg:off rendering produced by String. The
// empty string parses to the zero (start-of-log) position, so a follower
// resume token can be passed straight through from a query parameter.
func ParsePosition(s string) (Position, error) {
	if s == "" {
		return Position{}, nil
	}
	var p Position
	if _, err := fmt.Sscanf(s, "%d:%d", &p.Segment, &p.Offset); err != nil {
		return Position{}, fmt.Errorf("wal: parse position %q: %w", s, err)
	}
	if p.Offset < 0 {
		return Position{}, fmt.Errorf("wal: parse position %q: negative offset", s)
	}
	return p, nil
}

// Options tunes a Log.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one would
	// exceed this size; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync is the flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval bounds staleness under FsyncInterval; 0 means
	// DefaultFsyncInterval.
	FsyncInterval time.Duration
	// Clock drives the interval policy and checkpoint timing; nil means
	// the real clock.
	Clock simclock.Clock
	// Logger receives torn-tail and rotation notices; nil discards.
	Logger *slog.Logger
}

// Defaults.
const (
	DefaultSegmentBytes  = 4 << 20
	DefaultFsyncInterval = 100 * time.Millisecond
	// MaxRecordBytes is the sanity bound on a record length: anything
	// larger read back from disk is treated as torn/corrupt framing.
	MaxRecordBytes = 64 << 20
)

// recordHeaderLen is the framing overhead per record.
const recordHeaderLen = 8

// castagnoli is the CRC32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only segmented record log. Append is safe for
// concurrent use; in the registry the Durable manager additionally
// serializes appends with store mutations.
type Log struct {
	dir   string
	opts  Options
	clock simclock.Clock
	slog  *slog.Logger

	mu       sync.Mutex
	f        *os.File          // guarded by mu — the open tail segment
	seg      uint64            // guarded by mu — tail segment index
	off      int64             // guarded by mu — append cursor in the tail segment
	segments []uint64          // guarded by mu — live segment indexes, ascending
	segStart map[uint64]uint64 // guarded by mu — sequence number of each live segment's first record
	notify   chan struct{}     // guarded by mu — closed on append, then replaced lazily
	lastSync time.Time         // guarded by mu

	appends  atomic.Int64
	fsyncs   atomic.Int64
	bytes    atomic.Int64
	segCount atomic.Int64
	seq      atomic.Uint64 // records committed since the oldest live segment at Open
}

func segmentName(index uint64) string { return fmt.Sprintf("wal-%016d.seg", index) }

// listSegments returns the ascending segment indexes present in dir.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var idx uint64
		if _, err := fmt.Sscanf(name, "wal-%016d.seg", &idx); err != nil || idx == 0 {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open opens (creating if needed) the log in dir and recovers its tail:
// the last segment is scanned and any torn trailing bytes — a record the
// dying process never finished writing — are truncated away so the next
// append lands on a clean boundary.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.Clock == nil {
		opts.Clock = simclock.Real{}
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, clock: opts.Clock, slog: obs.OrNop(opts.Logger)}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.segStart = make(map[uint64]uint64)
	if len(segs) == 0 {
		segs = []uint64{1}
		f, err := os.OpenFile(filepath.Join(dir, segmentName(1)), os.O_CREATE|os.O_WRONLY, 0o666)
		if err != nil {
			return nil, fmt.Errorf("wal: create segment: %w", err)
		}
		l.f, l.seg, l.off = f, 1, 0
		l.segStart[1] = 0
	} else {
		// Sealed segments are counted so streaming readers can report
		// record sequence numbers relative to the oldest live segment.
		var total uint64
		for _, seg := range segs[:len(segs)-1] {
			l.segStart[seg] = total
			_, _, records, err := scanSegment(filepath.Join(dir, segmentName(seg)), nil)
			if err != nil {
				return nil, err
			}
			total += uint64(records)
		}
		tail := segs[len(segs)-1]
		path := filepath.Join(dir, segmentName(tail))
		valid, clean, records, err := scanSegment(path, nil)
		if err != nil {
			return nil, err
		}
		l.segStart[tail] = total
		total += uint64(records)
		f, err := os.OpenFile(path, os.O_WRONLY, 0o666)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		if !clean {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.slog.Warn("truncated torn WAL tail", "segment", tail, "validBytes", valid)
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: seek segment tail: %w", err)
		}
		l.f, l.seg, l.off = f, tail, valid
		l.seq.Store(total)
	}
	l.segments = segs
	l.segCount.Store(int64(len(segs)))
	l.lastSync = l.clock.Now()
	return l, nil
}

// scanSegment walks one segment file calling fn (which may be nil) for
// every intact record. It returns the offset just past the last intact
// record, whether the file ended exactly on a record boundary, and the
// number of intact records.
func scanSegment(path string, fn func(start, end int64, payload []byte) error) (valid int64, clean bool, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, false, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	size := info.Size()
	var off int64
	var hdr [recordHeaderLen]byte
	for {
		if off == size {
			return off, true, records, nil
		}
		if size-off < recordHeaderLen {
			return off, false, records, nil
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, false, 0, fmt.Errorf("wal: read segment: %w", err)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordBytes || length > size-off-recordHeaderLen {
			return off, false, records, nil
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+recordHeaderLen); err != nil {
			return 0, false, 0, fmt.Errorf("wal: read segment: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, false, records, nil
		}
		end := off + recordHeaderLen + length
		if fn != nil {
			if err := fn(off, end, payload); err != nil {
				return 0, false, 0, err
			}
		}
		off = end
		records++
	}
}

// Append writes one record and returns the position just past it. The
// record is flushed according to the fsync policy before Append returns.
func (l *Log) Append(payload []byte) (Position, error) {
	if int64(len(payload)) > MaxRecordBytes {
		return Position{}, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	need := int64(len(payload)) + recordHeaderLen
	if l.off > 0 && l.off+need > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return Position{}, err
		}
	}
	buf := make([]byte, need)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[recordHeaderLen:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return Position{}, fmt.Errorf("wal: append: %w", err)
	}
	l.off += need
	l.appends.Add(1)
	l.bytes.Add(need)
	l.seq.Add(1)
	if l.notify != nil {
		close(l.notify)
		l.notify = nil
	}
	if err := l.syncPolicyLocked(); err != nil {
		return Position{}, err
	}
	return Position{Segment: l.seg, Offset: l.off}, nil
}

// rotateLocked seals the tail segment and opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	next := l.seg + 1
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f, l.seg, l.off = f, next, 0
	l.segStart[next] = l.seq.Load()
	l.segments = append(l.segments, next)
	l.segCount.Store(int64(len(l.segments)))
	l.slog.Debug("rotated WAL segment", "segment", next)
	return nil
}

// syncPolicyLocked applies the fsync policy after an append.
func (l *Log) syncPolicyLocked() error {
	switch l.opts.Fsync {
	case FsyncAlways:
		return l.fsyncLocked()
	case FsyncInterval:
		now := l.clock.Now()
		if now.Sub(l.lastSync) >= l.opts.FsyncInterval {
			return l.fsyncLocked()
		}
	}
	return nil
}

func (l *Log) fsyncLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs.Add(1)
	l.lastSync = l.clock.Now()
	return nil
}

// Sync forces an fsync of the tail segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncLocked()
}

// Pos returns the current append cursor.
func (l *Log) Pos() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{Segment: l.seg, Offset: l.off}
}

// Committed returns the append cursor and the sequence number of the last
// committed record as one consistent pair — the bound a streaming reader
// may read up to.
func (l *Log) Committed() (Position, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Position{Segment: l.seg, Offset: l.off}, l.seq.Load()
}

// Seq returns the sequence number of the last committed record, counted
// from the oldest segment that was live at Open.
func (l *Log) Seq() uint64 { return l.seq.Load() }

// AppendSignal returns a channel closed by the next Append — the
// long-poll primitive for the replication stream. Each returned channel
// fires once; callers re-arm by calling AppendSignal again.
func (l *Log) AppendSignal() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// Replay calls fn for every record strictly after from, in log order. The
// tail was already truncated to a record boundary by Open, so an invalid
// record anywhere is corruption, not a torn write, and aborts the replay.
func (l *Log) Replay(from Position, fn func(pos Position, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segments...)
	l.mu.Unlock()
	for _, seg := range segs {
		if seg < from.Segment {
			continue
		}
		skipBefore := int64(0)
		if seg == from.Segment {
			skipBefore = from.Offset
		}
		path := filepath.Join(l.dir, segmentName(seg))
		_, clean, _, err := scanSegment(path, func(start, end int64, payload []byte) error {
			if start < skipBefore {
				return nil
			}
			return fn(Position{Segment: seg, Offset: end}, payload)
		})
		if err != nil {
			return err
		}
		if !clean {
			return fmt.Errorf("wal: segment %d is corrupt past its valid prefix", seg)
		}
	}
	return nil
}

// Prune removes segments wholly covered by a checkpoint at keep: every
// segment with an index below keep.Segment. The tail segment is never
// removed.
func (l *Log) Prune(keep Position) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var kept []uint64
	for _, seg := range l.segments {
		if seg < keep.Segment && seg != l.seg {
			if err := os.Remove(filepath.Join(l.dir, segmentName(seg))); err != nil {
				return removed, fmt.Errorf("wal: prune segment %d: %w", seg, err)
			}
			delete(l.segStart, seg)
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	l.segCount.Store(int64(len(kept)))
	return removed, nil
}

// Close syncs and closes the tail segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Appends returns the number of records appended since Open.
func (l *Log) Appends() int64 { return l.appends.Load() }

// Fsyncs returns the number of fsync calls issued.
func (l *Log) Fsyncs() int64 { return l.fsyncs.Load() }

// Bytes returns the bytes appended (framing included) since Open.
func (l *Log) Bytes() int64 { return l.bytes.Load() }

// SegmentCount returns the number of live segment files.
func (l *Log) SegmentCount() int64 { return l.segCount.Load() }
