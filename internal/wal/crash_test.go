package wal

// The seeded crash-injection harness: the acceptance test for the
// durability subsystem. Each seed drives a random acknowledged mutation
// sequence through a real lcm.Manager wired to a Durable (fsync=always),
// then simulates a kill -9 mid-write by abandoning the Durable without
// Close and tearing the unacknowledged tail record at a random byte
// offset — truncation or a flipped byte, like a half-written sector.
// Recovery into a fresh store must reproduce the acknowledged state
// byte-for-byte (store.Save output is deterministic: objects sorted by
// id, JSON map keys sorted by the encoder).

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/lcm"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
	"repro/internal/xacml"
)

func saveBytes(t *testing.T, s *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestManager(s *store.Store, clk simclock.Clock, d *Durable) (*lcm.Manager, lcm.Context) {
	m := lcm.New(s, nil, audit.New(s, clk), nil)
	if d != nil {
		m.Durability = d
	}
	return m, lcm.Context{UserID: "crash-tester", Roles: []string{xacml.RoleAdministrator}}
}

// mutator applies one random acknowledged LCM mutation per step, tracking
// live object and content ids so every operation it attempts is valid.
// Invalid life-cycle transitions (approving a deprecated object, …) are
// tolerated as no-ops: they mutate nothing and append nothing.
type mutator struct {
	t       *testing.T
	rng     *rand.Rand
	mgr     *lcm.Manager
	ctx     lcm.Context
	ids     []string
	content []string
	n       int
}

func (mu *mutator) pick() string { return mu.ids[mu.rng.Intn(len(mu.ids))] }

func (mu *mutator) drop(id string) {
	for i, v := range mu.ids {
		if v == id {
			mu.ids = append(mu.ids[:i], mu.ids[i+1:]...)
			return
		}
	}
}

func (mu *mutator) submit() {
	var o rim.Object
	switch mu.rng.Intn(3) {
	case 0:
		o = rim.NewService(fmt.Sprintf("svc-%d", mu.n), "crash harness service")
	case 1:
		o = rim.NewOrganization(fmt.Sprintf("org-%d", mu.n))
	default:
		o = rim.NewRegistryPackage(fmt.Sprintf("pkg-%d", mu.n))
	}
	if err := mu.mgr.SubmitObjects(mu.ctx, o); err != nil {
		mu.t.Fatal(err)
	}
	mu.ids = append(mu.ids, o.Base().ID)
}

func (mu *mutator) step() {
	mu.n++
	if len(mu.ids) == 0 {
		mu.submit()
		return
	}
	tolerate := func(err error) {
		if err != nil && !errors.Is(err, lcm.ErrInvalidState) {
			mu.t.Fatal(err)
		}
	}
	switch mu.rng.Intn(11) {
	case 0, 1:
		mu.submit()
	case 2:
		o, err := mu.mgr.Store.Get(mu.pick())
		if err != nil {
			mu.t.Fatal(err)
		}
		o.Base().Description = rim.NewIString(fmt.Sprintf("edited-%d", mu.n))
		if err := mu.mgr.UpdateObjects(mu.ctx, o); err != nil {
			mu.t.Fatal(err)
		}
	case 3:
		tolerate(mu.mgr.ApproveObjects(mu.ctx, mu.pick()))
	case 4:
		tolerate(mu.mgr.DeprecateObjects(mu.ctx, mu.pick()))
	case 5:
		tolerate(mu.mgr.UndeprecateObjects(mu.ctx, mu.pick()))
	case 6:
		id := mu.pick()
		if err := mu.mgr.RemoveObjects(mu.ctx, id); err != nil {
			mu.t.Fatal(err)
		}
		mu.drop(id)
	case 7:
		if err := mu.mgr.AddSlots(mu.ctx, mu.pick(), rim.Slot{Name: fmt.Sprintf("slot-%d", mu.n), Values: []string{"v"}}); err != nil {
			mu.t.Fatal(err)
		}
	case 8:
		if err := mu.mgr.RelocateObjects(mu.ctx, fmt.Sprintf("urn:home:%d", mu.n), mu.pick()); err != nil {
			mu.t.Fatal(err)
		}
	case 9:
		if len(mu.content) > 0 && mu.rng.Intn(2) == 0 {
			id := mu.content[len(mu.content)-1]
			mu.content = mu.content[:len(mu.content)-1]
			if err := mu.mgr.DeleteContent(id); err != nil {
				mu.t.Fatal(err)
			}
		} else {
			id := rim.NewUUID()
			if err := mu.mgr.PutContent(id, []byte(fmt.Sprintf("blob-%d", mu.n))); err != nil {
				mu.t.Fatal(err)
			}
			mu.content = append(mu.content, id)
		}
	default:
		u := rim.NewUser(fmt.Sprintf("user-%d", mu.n), rim.PersonName{FirstName: "Crash", LastName: "Tester"})
		if err := mu.mgr.PutDirect(u); err != nil {
			mu.t.Fatal(err)
		}
		mu.ids = append(mu.ids, u.ID)
	}
}

func tailSegment(t *testing.T, dir string) (uint64, int64) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(filepath.Join(dir, segmentName(last)))
	if err != nil {
		t.Fatal(err)
	}
	return last, fi.Size()
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryEverySeed is the acceptance criterion: for every seed,
// kill the process after an arbitrary acknowledged mutation, tear the
// in-flight WAL record at an arbitrary byte offset, and verify recovery
// reproduces exactly the acknowledged store.
func TestCrashRecoveryEverySeed(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			clk := simclock.NewManual(time.Unix(1_700_000_000, 0))
			opts := DurableOptions{
				Log: Options{Fsync: FsyncAlways, SegmentBytes: int64(256 + rng.Intn(2048)), Clock: clk},
				// Checkpoints happen only where the harness injects them,
				// so the torn record can never ride into one.
				CheckpointBytes:   -1,
				CheckpointRecords: -1,
			}
			s1 := store.New()
			d1, err := OpenDurable(dir, s1, opts)
			if err != nil {
				t.Fatal(err)
			}
			mgr, ctx := newTestManager(s1, clk, d1)
			mu := &mutator{t: t, rng: rng, mgr: mgr, ctx: ctx}
			steps := 1 + rng.Intn(20)
			for i := 0; i < steps; i++ {
				mu.step()
				if rng.Intn(6) == 0 {
					if err := d1.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				clk.Advance(time.Second)
			}
			acknowledged := saveBytes(t, s1)

			// One more mutation whose WAL record we tear: with
			// fsync=always this is the only record a crash can damage.
			// A step may be a tolerated invalid transition that appends
			// nothing (and mutates nothing), so loop until bytes land.
			segBefore, sizeBefore := tailSegment(t, dir)
			segAfter, sizeAfter := segBefore, sizeBefore
			for segAfter == segBefore && sizeAfter == sizeBefore {
				mu.step()
				segAfter, sizeAfter = tailSegment(t, dir)
			}
			start := int64(0)
			if segAfter == segBefore {
				start = sizeBefore
			}
			recLen := sizeAfter - start
			if recLen <= 0 {
				t.Fatalf("in-flight mutation appended no bytes (start=%d, end=%d)", start, sizeAfter)
			}
			path := filepath.Join(dir, segmentName(segAfter))
			if rng.Intn(2) == 0 {
				cut := start + rng.Int63n(recLen) // anywhere in [start, end)
				if err := os.Truncate(path, cut); err != nil {
					t.Fatal(err)
				}
			} else {
				flipByte(t, path, start+rng.Int63n(recLen))
			}
			// d1 is abandoned without Close: the kill -9.

			s2 := store.New()
			d2, err := OpenDurable(dir, s2, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := saveBytes(t, s2); !bytes.Equal(got, acknowledged) {
				t.Fatalf("recovered store differs from acknowledged pre-crash state\n got: %s\nwant: %s", got, acknowledged)
			}

			// The recovered registry accepts writes, and those survive yet
			// another recovery.
			mgr2, ctx2 := newTestManager(s2, clk, d2)
			svc := rim.NewService("post-recovery", "")
			if err := mgr2.SubmitObjects(ctx2, svc); err != nil {
				t.Fatal(err)
			}
			after := saveBytes(t, s2)
			s3 := store.New()
			if _, err := OpenDurable(dir, s3, opts); err != nil {
				t.Fatal(err)
			}
			if got := saveBytes(t, s3); !bytes.Equal(got, after) {
				t.Fatal("second recovery lost the post-recovery write")
			}
		})
	}
}

// TestWALEquivalentToSnapshotRoundTrip is the satellite property test: a
// store recovered purely from disk (checkpoints + WAL replay, rotation
// and pruning in play) is deep-equal to a Save/Load round-trip of the
// live store — the two persistence paths agree exactly.
func TestWALEquivalentToSnapshotRoundTrip(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			clk := simclock.NewManual(time.Unix(1_700_000_000, 0))
			opts := DurableOptions{
				Log: Options{Fsync: FsyncAlways, SegmentBytes: int64(512 + rng.Intn(1024)), Clock: clk},
				// Aggressive automatic checkpoints so replay starts from a
				// mid-sequence snapshot in most seeds.
				CheckpointBytes:   int64(1024 + rng.Intn(4096)),
				CheckpointRecords: 2 + rng.Intn(8),
			}
			s1 := store.New()
			d1, err := OpenDurable(dir, s1, opts)
			if err != nil {
				t.Fatal(err)
			}
			mgr, ctx := newTestManager(s1, clk, d1)
			mu := &mutator{t: t, rng: rng, mgr: mgr, ctx: ctx}
			for i := 0; i < 30; i++ {
				mu.step()
				clk.Advance(time.Second)
			}
			if rng.Intn(2) == 0 {
				// Half the seeds shut down gracefully (final checkpoint),
				// half crash cleanly on a record boundary.
				if err := d1.Close(); err != nil {
					t.Fatal(err)
				}
			}

			recovered := store.New()
			if _, err := OpenDurable(dir, recovered, opts); err != nil {
				t.Fatal(err)
			}
			roundTripped := store.New()
			if err := roundTripped.Load(bytes.NewReader(saveBytes(t, s1))); err != nil {
				t.Fatal(err)
			}
			got, want := saveBytes(t, recovered), saveBytes(t, roundTripped)
			if !bytes.Equal(got, want) {
				t.Fatalf("WAL recovery and snapshot round-trip disagree\n wal: %s\nsnap: %s", got, want)
			}
		})
	}
}

// TestDegradedModeIsReadOnlyTyped pins the failure contract: after a
// disk-write failure the registry refuses writes with ErrReadOnly while
// reads keep serving.
func TestDegradedModeIsReadOnlyTyped(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewManual(time.Unix(1_700_000_000, 0))
	s := store.New()
	d, err := OpenDurable(dir, s, DurableOptions{Log: Options{Clock: clk}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.WAL().Close()
	mgr, ctx := newTestManager(s, clk, d)
	svc := rim.NewService("survivor", "")
	if err := mgr.SubmitObjects(ctx, svc); err != nil {
		t.Fatal(err)
	}

	d.ForceReadOnly(fmt.Errorf("simulated disk failure"))
	if !d.Degraded() {
		t.Fatal("ForceReadOnly did not degrade")
	}
	before := saveBytes(t, s)
	err = mgr.SubmitObjects(ctx, rim.NewService("rejected", ""))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write in degraded mode returned %v, want ErrReadOnly", err)
	}
	if err := mgr.PutContent("c1", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("content write in degraded mode returned %v, want ErrReadOnly", err)
	}
	// Reads keep serving and the store is untouched.
	if _, err := s.Get(svc.ID); err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, s); !bytes.Equal(got, before) {
		t.Fatal("degraded-mode write mutated the store")
	}
}

// TestCheckpointRetentionAndPrune verifies the space bound: at most two
// checkpoint files survive, WAL segments wholly covered by the retained
// fallback checkpoint are deleted, and recovery still works afterwards.
func TestCheckpointRetentionAndPrune(t *testing.T) {
	dir := t.TempDir()
	clk := simclock.NewManual(time.Unix(1_700_000_000, 0))
	opts := DurableOptions{
		Log:               Options{Fsync: FsyncAlways, SegmentBytes: 128, Clock: clk},
		CheckpointBytes:   -1,
		CheckpointRecords: -1,
	}
	s := store.New()
	d, err := OpenDurable(dir, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	mgr, ctx := newTestManager(s, clk, d)
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			if err := mgr.SubmitObjects(ctx, rim.NewService(fmt.Sprintf("svc-%d-%d", round, i), "retention")); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	cps, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) > 2 {
		t.Fatalf("%d checkpoint files retained, want at most 2", len(cps))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first := segs[0]; first <= 1 {
		t.Fatalf("oldest live segment is %d: pruning never ran", first)
	}
	// The oldest retained checkpoint must still have its replay window on
	// disk, or fallback recovery would be incomplete.
	oldest, err := readCheckpoint(filepath.Join(dir, checkpointName(cps[0])))
	if err != nil {
		t.Fatal(err)
	}
	if first := segs[0]; first > oldest.Segment {
		t.Fatalf("oldest live segment %d is past the fallback checkpoint's position (segment %d)", first, oldest.Segment)
	}
	want := saveBytes(t, s)
	recovered := store.New()
	if _, err := OpenDurable(dir, recovered, opts); err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, recovered); !bytes.Equal(got, want) {
		t.Fatal("recovery after retention/prune lost state")
	}
}
