package hostsim

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2011, 4, 22, 10, 0, 0, 0, time.UTC)

func newTestHost(cores int) *Host {
	return NewHost(Config{
		Name: "thermo.sdsu.edu", Cores: cores,
		TotalMemB: 4 << 30, TotalSwapB: 1 << 30,
	}, t0)
}

func TestSingleTaskCompletes(t *testing.T) {
	h := newTestHost(1)
	if err := h.Submit(Task{ID: "t1", CPUSeconds: 10, MemB: 1 << 20}, t0); err != nil {
		t.Fatal(err)
	}
	done := h.AdvanceTo(t0.Add(9 * time.Second))
	if len(done) != 0 {
		t.Fatalf("task finished early: %+v", done)
	}
	done = h.AdvanceTo(t0.Add(11 * time.Second))
	if len(done) != 1 {
		t.Fatalf("completions = %d", len(done))
	}
	got := done[0]
	if got.Task.ID != "t1" || got.SwapUsed {
		t.Fatalf("completion = %+v", got)
	}
	wantFinish := t0.Add(10 * time.Second)
	if d := got.Finish.Sub(wantFinish); d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("finish = %v, want ~%v", got.Finish, wantFinish)
	}
	if got.Latency() < 9*time.Second {
		t.Fatalf("latency = %v", got.Latency())
	}
}

func TestProcessorSharingSlowsTasks(t *testing.T) {
	// Two 10s tasks on one core must take ~20s each to finish.
	h := newTestHost(1)
	for _, id := range []string{"a", "b"} {
		if err := h.Submit(Task{ID: id, CPUSeconds: 10, MemB: 1}, t0); err != nil {
			t.Fatal(err)
		}
	}
	done := h.AdvanceTo(t0.Add(19 * time.Second))
	if len(done) != 0 {
		t.Fatalf("finished early: %+v", done)
	}
	done = h.AdvanceTo(t0.Add(21 * time.Second))
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
}

func TestMultiCoreRunsInParallel(t *testing.T) {
	// Two 10s tasks on two cores finish in ~10s.
	h := newTestHost(2)
	for _, id := range []string{"a", "b"} {
		if err := h.Submit(Task{ID: id, CPUSeconds: 10, MemB: 1}, t0); err != nil {
			t.Fatal(err)
		}
	}
	done := h.AdvanceTo(t0.Add(10*time.Second + time.Millisecond))
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
}

func TestStaggeredCompletionChangesRate(t *testing.T) {
	// One core. Task a: 10 cpu-s at t=0. Task b: 10 cpu-s at t=10.
	// 0-10s: a alone? No — b arrives at 10; a shares 0-10 alone, so a
	// finishes exactly at 10s; b then runs alone 10-20s.
	h := newTestHost(1)
	if err := h.Submit(Task{ID: "a", CPUSeconds: 10, MemB: 1}, t0); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(Task{ID: "b", CPUSeconds: 10, MemB: 1}, t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	done := h.AdvanceTo(t0.Add(30 * time.Second))
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	if done[0].Task.ID != "a" || done[1].Task.ID != "b" {
		t.Fatalf("order = %s, %s", done[0].Task.ID, done[1].Task.ID)
	}
	bFinish := done[1].Finish
	want := t0.Add(20 * time.Second)
	if d := bFinish.Sub(want); d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("b finish = %v, want ~%v", bFinish, want)
	}
}

func TestLoadAverageRisesAndDecays(t *testing.T) {
	h := newTestHost(1)
	if h.LoadAvg() != 0 {
		t.Fatalf("initial load = %v", h.LoadAvg())
	}
	// Hold run queue at 1 for 3 minutes: load -> ~1.
	if err := h.Submit(Task{ID: "long", CPUSeconds: 180, MemB: 1}, t0); err != nil {
		t.Fatal(err)
	}
	h.AdvanceTo(t0.Add(3 * time.Minute))
	if l := h.LoadAvg(); l < 0.9 || l > 1.0 {
		t.Fatalf("load after 3min busy = %v", l)
	}
	// Idle for 3 minutes: load decays toward 0.
	h.AdvanceTo(t0.Add(6 * time.Minute))
	if l := h.LoadAvg(); l > 0.1 {
		t.Fatalf("load after 3min idle = %v", l)
	}
}

func TestAmbientLoad(t *testing.T) {
	h := NewHost(Config{Name: "x", Cores: 4, TotalMemB: 1 << 30, AmbientLoad: 2.5}, t0)
	if l := h.LoadAvg(); l != 2.5 {
		t.Fatalf("ambient start = %v", l)
	}
	h.AdvanceTo(t0.Add(10 * time.Minute))
	if l := h.LoadAvg(); math.Abs(l-2.5) > 0.01 {
		t.Fatalf("ambient steady state = %v", l)
	}
}

func TestMemoryAccountingAndSwapSpill(t *testing.T) {
	h := NewHost(Config{Name: "x", Cores: 8, TotalMemB: 1 << 30, TotalSwapB: 1 << 30}, t0)
	s, err := h.Sample(t0)
	if err != nil || s.MemoryB != 1<<30 || s.SwapB != 1<<30 {
		t.Fatalf("initial sample %+v, %v", s, err)
	}
	// 768MB task fits in RAM.
	if err := h.Submit(Task{ID: "big", CPUSeconds: 100, MemB: 768 << 20}, t0); err != nil {
		t.Fatal(err)
	}
	s, _ = h.Sample(t0)
	if s.MemoryB != (1<<30)-(768<<20) {
		t.Fatalf("avail mem = %d", s.MemoryB)
	}
	// 512MB task spills 256MB to swap.
	if err := h.Submit(Task{ID: "spill", CPUSeconds: 100, MemB: 512 << 20}, t0); err != nil {
		t.Fatal(err)
	}
	s, _ = h.Sample(t0)
	if s.MemoryB != 0 || s.SwapB != (1<<30)-(256<<20) {
		t.Fatalf("after spill: mem=%d swap=%d", s.MemoryB, s.SwapB)
	}
	// A task larger than remaining swap is rejected.
	if err := h.Submit(Task{ID: "oom", CPUSeconds: 1, MemB: 2 << 30}, t0); err == nil {
		t.Fatal("oom task accepted")
	}
	if _, rejected := h.Stats(); rejected != 1 {
		t.Fatalf("rejected = %d", rejected)
	}
	// Completion releases memory from both RAM and swap.
	done := h.AdvanceTo(t0.Add(200 * time.Second))
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	var spill Completed
	for _, d := range done {
		if d.Task.ID == "spill" {
			spill = d
		}
	}
	if !spill.SwapUsed {
		t.Fatal("spill task did not record swap use")
	}
	s, _ = h.Sample(t0.Add(200 * time.Second))
	if s.MemoryB != 1<<30 || s.SwapB != 1<<30 {
		t.Fatalf("memory not released: %+v", s)
	}
}

func TestDownHost(t *testing.T) {
	h := newTestHost(1)
	h.SetDown(true)
	if !h.Down() {
		t.Fatal("Down() = false")
	}
	if err := h.Submit(Task{ID: "t", CPUSeconds: 1, MemB: 1}, t0); err == nil {
		t.Fatal("down host accepted task")
	}
	if _, err := h.Sample(t0); err == nil {
		t.Fatal("down host returned sample")
	}
	h.SetDown(false)
	if err := h.Submit(Task{ID: "t", CPUSeconds: 1, MemB: 1}, t0); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	h := newTestHost(1)
	if err := h.Submit(Task{ID: "zero", CPUSeconds: 0, MemB: 1}, t0); err == nil {
		t.Fatal("zero-cpu task accepted")
	}
}

func TestClusterBasics(t *testing.T) {
	c := NewCluster()
	for _, n := range []string{"b.sdsu.edu", "a.sdsu.edu"} {
		c.Add(NewHost(Config{Name: n, Cores: 1, TotalMemB: 1 << 30}, t0))
	}
	if names := c.Names(); names[0] != "a.sdsu.edu" || names[1] != "b.sdsu.edu" {
		t.Fatalf("Names = %v", names)
	}
	if c.Host("a.sdsu.edu") == nil || c.Host("zzz") != nil {
		t.Fatal("Host lookup broken")
	}
	if err := c.Host("a.sdsu.edu").Submit(Task{ID: "t", CPUSeconds: 5, MemB: 1}, t0); err != nil {
		t.Fatal(err)
	}
	done := c.AdvanceTo(t0.Add(10 * time.Second))
	if len(done["a.sdsu.edu"]) != 1 || len(done["b.sdsu.edu"]) != 0 {
		t.Fatalf("cluster completions = %v", done)
	}
	loads := c.Loads()
	if len(loads) != 2 || loads[0] <= loads[1] {
		t.Fatalf("loads = %v (a should be busier)", loads)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	c.Add(NewHost(Config{Name: "a.sdsu.edu"}, t0))
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	h := newTestHost(1)
	h.AdvanceTo(t0.Add(time.Minute))
	// Going backwards must not panic or move time.
	h.AdvanceTo(t0)
	s, err := h.Sample(t0.Add(time.Minute))
	if err != nil || s.MemoryB != 4<<30 {
		t.Fatalf("sample after no-op: %+v, %v", s, err)
	}
}

func TestNetDelayReported(t *testing.T) {
	h := NewHost(Config{Name: "far", Cores: 1, TotalMemB: 1 << 30, NetDelayMs: 35}, t0)
	s, err := h.Sample(t0)
	if err != nil || s.NetDelayMs != 35 {
		t.Fatalf("netdelay = %+v, %v", s, err)
	}
}
