package hostsim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// Property: task conservation — every accepted task is eventually
// completed exactly once, and memory returns to its initial level.
func TestTaskConservation(t *testing.T) {
	f := func(cpuDeciSecs []uint8, cores8 uint8) bool {
		cores := int(cores8%4) + 1
		h := NewHost(Config{Name: "p", Cores: cores, TotalMemB: 1 << 30, TotalSwapB: 1 << 30}, t0)
		accepted := 0
		var totalCPU float64
		for i, d := range cpuDeciSecs {
			if len(cpuDeciSecs) > 32 && i >= 32 {
				break
			}
			cpu := float64(d)/10 + 0.1
			if err := h.Submit(Task{ID: fmt.Sprintf("t%d", i), CPUSeconds: cpu, MemB: 1 << 20}, t0); err != nil {
				continue
			}
			accepted++
			totalCPU += cpu
		}
		// Worst case all tasks serialize on one core.
		horizon := time.Duration(totalCPU*float64(time.Second)) + time.Minute
		done := h.AdvanceTo(t0.Add(horizon))
		if len(done) != accepted {
			return false
		}
		seen := map[string]bool{}
		for _, c := range done {
			if seen[c.Task.ID] {
				return false
			}
			seen[c.Task.ID] = true
		}
		s, err := h.Sample(t0.Add(horizon))
		return err == nil && s.MemoryB == 1<<30 && s.SwapB == 1<<30 && h.RunQueue() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: completions are monotone in time — Finish is never before
// Start, and never before the submission clock.
func TestCompletionTimesMonotone(t *testing.T) {
	f := func(gapsSecs []uint8) bool {
		h := NewHost(Config{Name: "p", Cores: 2, TotalMemB: 1 << 30}, t0)
		now := t0
		n := len(gapsSecs)
		if n > 24 {
			n = 24
		}
		for i := 0; i < n; i++ {
			now = now.Add(time.Duration(gapsSecs[i]%30) * time.Second)
			if err := h.Submit(Task{ID: fmt.Sprintf("t%d", i), CPUSeconds: 1 + float64(i%5), MemB: 1 << 10}, now); err != nil {
				return false
			}
		}
		done := h.AdvanceTo(now.Add(time.Hour))
		if len(done) != n {
			return false
		}
		prev := time.Time{}
		for _, c := range done {
			if c.Finish.Before(c.Start) || c.Finish.Before(prev) {
				return false
			}
			prev = c.Finish
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: load average is always non-negative and bounded by the maximum
// concurrency plus ambient load.
func TestLoadAverageBounds(t *testing.T) {
	f := func(burst uint8, ambient10 uint8) bool {
		ambient := float64(ambient10%30) / 10
		h := NewHost(Config{Name: "p", Cores: 1, TotalMemB: 1 << 30, AmbientLoad: ambient}, t0)
		n := int(burst%20) + 1
		for i := 0; i < n; i++ {
			if err := h.Submit(Task{ID: fmt.Sprintf("t%d", i), CPUSeconds: 30, MemB: 1 << 10}, t0); err != nil {
				return false
			}
		}
		upper := float64(n) + ambient + 1e-9
		for step := 0; step < 20; step++ {
			h.AdvanceTo(t0.Add(time.Duration(step*30) * time.Second))
			l := h.LoadAvg()
			if l < 0 || l > upper {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
