// Package hostsim simulates the host machines the thesis deploys Web
// Services on (volta, thermo, exergy, romulus, eon at SDSU). The
// load-balancing scheme observes exactly three scalars per host — CPU load
// (run-queue length), available physical memory, and available swap — so a
// compact queueing simulation reproduces the signals the real testbed
// produced, with the advantage that dynamics are deterministic under the
// simclock and controllable for experiments.
//
// The model:
//
//   - Each host has a fixed number of cores and executes submitted tasks
//     under processor sharing: with n runnable tasks on c cores, every task
//     progresses at rate min(1, c/n). An overloaded host therefore slows
//     all its tasks down, which is what makes poor URI selection costly in
//     the MTC experiments.
//   - CPU load is reported as a Unix-style one-minute exponentially damped
//     load average over the run-queue length (plus any configured ambient
//     load from background processes).
//   - Task memory is charged against physical memory first and spills to
//     swap when RAM is exhausted; a task that fits in neither is rejected.
//   - Hosts can be marked down to simulate failures: NodeStatus collection
//     fails and submissions are refused.
//
// All state advances only through AdvanceTo, driven by a simclock, so runs
// are reproducible.
package hostsim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/constraint"
)

// loadAvgWindow is the e-folding period of the reported load average,
// matching the Unix 1-minute load average the thesis's NodeStatus service
// reads from the OS.
const loadAvgWindow = time.Minute

// Config describes a simulated host.
type Config struct {
	Name        string  // hostname, e.g. "thermo.sdsu.edu"
	Cores       int     // CPU cores; default 1
	TotalMemB   int64   // physical memory capacity in bytes
	TotalSwapB  int64   // swap capacity in bytes
	AmbientLoad float64 // constant background run-queue contribution
	NetDelayMs  float64 // baseline network delay to this host (H4 extension)
}

// Task is one unit of MTC work: it needs CPUSeconds of dedicated-core time
// and holds MemB bytes for its whole run.
type Task struct {
	ID         string
	CPUSeconds float64
	MemB       int64
}

// Completed reports a finished task.
type Completed struct {
	Task     Task
	Start    time.Time
	Finish   time.Time
	SwapUsed bool // true if any of the task's memory lived in swap
}

// Latency returns the task's wall-clock residence time.
func (c Completed) Latency() time.Duration { return c.Finish.Sub(c.Start) }

type runningTask struct {
	task      Task
	start     time.Time
	remaining float64 // CPU seconds still needed
	memRAM    int64
	memSwap   int64
}

// Host is one simulated machine. Methods are safe for concurrent use; time
// only moves via AdvanceTo.
type Host struct {
	cfg Config

	mu        sync.Mutex
	now       time.Time
	loadAvg   float64
	running   []*runningTask
	usedRAM   int64
	usedSwap  int64
	down      bool
	completed []Completed // drained by AdvanceTo callers
	submitted int
	rejected  int
}

// NewHost creates a host at the given start time.
func NewHost(cfg Config, start time.Time) *Host {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.TotalMemB <= 0 {
		cfg.TotalMemB = 4 << 30
	}
	if cfg.TotalSwapB < 0 {
		cfg.TotalSwapB = 0
	}
	return &Host{cfg: cfg, now: start, loadAvg: cfg.AmbientLoad}
}

// Name returns the hostname.
func (h *Host) Name() string { return h.cfg.Name }

// Config returns the host's configuration.
func (h *Host) Config() Config { return h.cfg }

// SetDown marks the host failed (true) or recovered (false).
func (h *Host) SetDown(down bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.down = down
}

// Down reports whether the host is failed.
func (h *Host) Down() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// Stats reports lifetime submission counters: submitted accepted tasks and
// rejected ones.
func (h *Host) Stats() (submitted, rejected int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.submitted, h.rejected
}

// Submit starts a task at time now (which must not precede the host
// clock; the host is advanced to now first). It returns an error when the
// host is down or the task's memory fits in neither RAM nor swap.
func (h *Host) Submit(t Task, now time.Time) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(now)
	if h.down {
		h.rejected++
		return fmt.Errorf("hostsim: host %s is down", h.cfg.Name)
	}
	if t.CPUSeconds <= 0 {
		return fmt.Errorf("hostsim: task %s has non-positive cpu time", t.ID)
	}
	rt := &runningTask{task: t, start: h.now, remaining: t.CPUSeconds}
	free := h.cfg.TotalMemB - h.usedRAM
	if t.MemB <= free {
		rt.memRAM = t.MemB
	} else {
		rt.memRAM = free
		if rt.memRAM < 0 {
			rt.memRAM = 0
		}
		rt.memSwap = t.MemB - rt.memRAM
		if h.usedSwap+rt.memSwap > h.cfg.TotalSwapB {
			h.rejected++
			return fmt.Errorf("hostsim: host %s out of memory for task %s (%d bytes)", h.cfg.Name, t.ID, t.MemB)
		}
	}
	h.usedRAM += rt.memRAM
	h.usedSwap += rt.memSwap
	h.running = append(h.running, rt)
	h.submitted++
	return nil
}

// AdvanceTo moves the host's clock to now, progressing tasks under
// processor sharing and updating the load average. It returns the tasks
// completed since the previous call, in completion order.
func (h *Host) AdvanceTo(now time.Time) []Completed {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(now)
	done := h.completed
	h.completed = nil
	return done
}

// advanceLocked advances simulation state to now in completion-bounded
// substeps so per-task rates stay correct as the run queue drains.
func (h *Host) advanceLocked(now time.Time) {
	for now.After(h.now) {
		dt := now.Sub(h.now).Seconds()
		n := len(h.running)
		rate := 1.0
		if n > h.cfg.Cores {
			rate = float64(h.cfg.Cores) / float64(n)
		}
		step := dt
		if n > 0 {
			// Time until the first completion at the current rate.
			minRemain := math.Inf(1)
			for _, rt := range h.running {
				if rt.remaining < minRemain {
					minRemain = rt.remaining
				}
			}
			if t := minRemain / rate; t < step {
				step = t
			}
		}
		h.stepLoadLocked(step)
		next := h.now.Add(time.Duration(step * float64(time.Second)))
		if n > 0 {
			keep := h.running[:0]
			for _, rt := range h.running {
				rt.remaining -= rate * step
				if rt.remaining <= 1e-12 {
					h.usedRAM -= rt.memRAM
					h.usedSwap -= rt.memSwap
					h.completed = append(h.completed, Completed{
						Task: rt.task, Start: rt.start, Finish: next, SwapUsed: rt.memSwap > 0,
					})
				} else {
					keep = append(keep, rt)
				}
			}
			h.running = keep
		}
		h.now = next
		if step <= 0 {
			break
		}
	}
}

// stepLoadLocked applies the exponentially damped load-average update for a
// step of dt seconds at the current run-queue length.
func (h *Host) stepLoadLocked(dt float64) {
	if dt <= 0 {
		return
	}
	n := float64(len(h.running)) + h.cfg.AmbientLoad
	k := math.Exp(-dt / loadAvgWindow.Seconds())
	h.loadAvg = h.loadAvg*k + n*(1-k)
}

// Sample returns the host's current NodeStatus measurement after advancing
// to now. It fails when the host is down, mirroring a timed-out NodeStatus
// invocation.
func (h *Host) Sample(now time.Time) (constraint.Sample, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.advanceLocked(now)
	if h.down {
		return constraint.Sample{}, fmt.Errorf("hostsim: host %s is down", h.cfg.Name)
	}
	return constraint.Sample{
		Load:       h.loadAvg,
		MemoryB:    h.cfg.TotalMemB - h.usedRAM,
		SwapB:      h.cfg.TotalSwapB - h.usedSwap,
		NetDelayMs: h.cfg.NetDelayMs,
	}, nil
}

// RunQueue returns the instantaneous number of running tasks.
func (h *Host) RunQueue() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.running)
}

// LoadAvg returns the current damped load average without advancing time.
func (h *Host) LoadAvg() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loadAvg
}

// Cluster is a named set of hosts advanced together.
type Cluster struct {
	mu    sync.RWMutex
	hosts map[string]*Host
	order []string
}

// NewCluster creates an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{hosts: make(map[string]*Host)}
}

// Add registers a host; adding a duplicate name panics (a configuration
// bug).
func (c *Cluster) Add(h *Host) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.hosts[h.Name()]; dup {
		panic("hostsim: duplicate host " + h.Name())
	}
	c.hosts[h.Name()] = h
	c.order = append(c.order, h.Name())
	sort.Strings(c.order)
}

// Host returns the host with the given name, or nil.
func (c *Cluster) Host(name string) *Host {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hosts[name]
}

// Names returns the host names in sorted order.
func (c *Cluster) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// Hosts returns the hosts in name order.
func (c *Cluster) Hosts() []*Host {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Host, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.hosts[n])
	}
	return out
}

// AdvanceTo advances every host to now and returns all completions keyed by
// host name.
func (c *Cluster) AdvanceTo(now time.Time) map[string][]Completed {
	out := make(map[string][]Completed)
	for _, h := range c.Hosts() {
		if done := h.AdvanceTo(now); len(done) > 0 {
			out[h.Name()] = done
		}
	}
	return out
}

// Loads returns each host's load average in name order.
func (c *Cluster) Loads() []float64 {
	hosts := c.Hosts()
	out := make([]float64, len(hosts))
	for i, h := range hosts {
		out[i] = h.LoadAvg()
	}
	return out
}
