package store

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rim"
)

// snapshot is the on-disk JSON layout of a Store.
type snapshot struct {
	Objects   []Envelope        `json:"objects"`
	Content   map[string][]byte `json:"content,omitempty"`
	NodeState []NodeState       `json:"nodeState,omitempty"`
}

// Envelope tags a serialized object with its concrete class so a decoder
// can rebuild the right Go type. It is the unit of object persistence
// shared by the snapshot format and the write-ahead log's mutation
// records.
type Envelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

func kindOf(o rim.Object) string { return o.Base().ObjectType.Short() }

// EncodeObject marshals o into a kind-tagged envelope.
func EncodeObject(o rim.Object) (Envelope, error) {
	data, err := json.Marshal(o)
	if err != nil {
		return Envelope{}, fmt.Errorf("store: marshal %s: %w", o.Base().ID, err)
	}
	return Envelope{Kind: kindOf(o), Data: data}, nil
}

// Decode rebuilds the concrete rim object the envelope carries.
func (e Envelope) Decode() (rim.Object, error) {
	return decodeObject(e)
}

// Save writes a JSON snapshot of the store to w. The snapshot contains
// every registry object, all repository content, and the NodeState table,
// all captured in a single critical section so a snapshot taken while LCM
// writes are in flight is still a point-in-time view: it can never pair an
// object list from one instant with the content map of a later one.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	objs := make([]rim.Object, 0, len(s.objects))
	for _, o := range s.objects {
		objs = append(objs, rim.CloneObject(o))
	}
	var content map[string][]byte
	if len(s.content) > 0 {
		content = make(map[string][]byte, len(s.content))
		for k, v := range s.content {
			content[k] = append([]byte(nil), v...)
		}
	}
	// The NodeState table locks itself; acquiring it inside s.mu keeps the
	// three captures at one instant. Nothing acquires these locks in the
	// reverse order.
	rows := s.nodeState.Rows()
	s.mu.RUnlock()

	// Sorting and marshalling happen outside the critical section.
	sortByID(objs)
	snap := snapshot{Content: content, NodeState: rows}
	for _, o := range objs {
		env, err := EncodeObject(o)
		if err != nil {
			return err
		}
		snap.Objects = append(snap.Objects, env)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&snap)
}

// Load replaces the store's contents with the snapshot read from r. The
// NodeStateTable keeps its identity — components holding the table pointer
// (the balancer, the collector) observe the restored rows rather than
// writing to an orphaned table.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	fresh := New()
	for _, env := range snap.Objects {
		o, err := decodeObject(env)
		if err != nil {
			return err
		}
		if err := fresh.Put(o); err != nil {
			return err
		}
	}
	for k, v := range snap.Content {
		fresh.PutContent(k, v)
	}

	s.mu.Lock()
	s.objects = fresh.objects
	s.byType = fresh.byType
	s.byOwner = fresh.byOwner
	s.byName = fresh.byName
	s.assocBySource = fresh.assocBySource
	s.assocByTarget = fresh.assocByTarget
	s.content = fresh.content
	s.nodeState.Reset(snap.NodeState)
	s.mu.Unlock()
	return nil
}

func decodeObject(env Envelope) (rim.Object, error) {
	var o rim.Object
	switch env.Kind {
	case "Organization":
		o = new(rim.Organization)
	case "User":
		o = new(rim.User)
	case "Service":
		o = new(rim.Service)
	case "ServiceBinding":
		o = new(rim.ServiceBinding)
	case "SpecificationLink":
		o = new(rim.SpecificationLink)
	case "Association":
		o = new(rim.Association)
	case "Classification":
		o = new(rim.Classification)
	case "ClassificationScheme":
		o = new(rim.ClassificationScheme)
	case "ClassificationNode":
		o = new(rim.ClassificationNode)
	case "RegistryPackage":
		o = new(rim.RegistryPackage)
	case "ExternalLink":
		o = new(rim.ExternalLink)
	case "ExternalIdentifier":
		o = new(rim.ExternalIdentifier)
	case "AuditableEvent":
		o = new(rim.AuditableEvent)
	case "AdhocQuery":
		o = new(rim.AdhocQuery)
	case "ExtrinsicObject":
		o = new(rim.ExtrinsicObject)
	default:
		return nil, fmt.Errorf("store: snapshot contains unknown kind %q", env.Kind)
	}
	if err := json.Unmarshal(env.Data, o); err != nil {
		return nil, fmt.Errorf("store: decode %s: %w", env.Kind, err)
	}
	return o, nil
}
