package store

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rim"
)

// snapshot is the on-disk JSON layout of a Store.
type snapshot struct {
	Objects   []objectEnvelope  `json:"objects"`
	Content   map[string][]byte `json:"content,omitempty"`
	NodeState []NodeState       `json:"nodeState,omitempty"`
}

// objectEnvelope tags each serialized object with its concrete class so the
// decoder can rebuild the right Go type.
type objectEnvelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

func kindOf(o rim.Object) string { return o.Base().ObjectType.Short() }

// Save writes a JSON snapshot of the store to w. The snapshot contains
// every registry object, all repository content, and the NodeState table.
func (s *Store) Save(w io.Writer) error {
	var snap snapshot
	for _, o := range s.All() {
		data, err := json.Marshal(o)
		if err != nil {
			return fmt.Errorf("store: marshal %s: %w", o.Base().ID, err)
		}
		snap.Objects = append(snap.Objects, objectEnvelope{Kind: kindOf(o), Data: data})
	}
	s.mu.RLock()
	if len(s.content) > 0 {
		snap.Content = make(map[string][]byte, len(s.content))
		for k, v := range s.content {
			snap.Content[k] = append([]byte(nil), v...)
		}
	}
	s.mu.RUnlock()
	snap.NodeState = s.nodeState.Rows()

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&snap)
}

// Load replaces the store's contents with the snapshot read from r.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	fresh := New()
	for _, env := range snap.Objects {
		o, err := decodeObject(env)
		if err != nil {
			return err
		}
		if err := fresh.Put(o); err != nil {
			return err
		}
	}
	for k, v := range snap.Content {
		fresh.PutContent(k, v)
	}
	for _, row := range snap.NodeState {
		fresh.nodeState.Upsert(row)
	}

	s.mu.Lock()
	s.objects = fresh.objects
	s.byType = fresh.byType
	s.byOwner = fresh.byOwner
	s.assocBySource = fresh.assocBySource
	s.assocByTarget = fresh.assocByTarget
	s.content = fresh.content
	s.nodeState = fresh.nodeState
	s.mu.Unlock()
	return nil
}

func decodeObject(env objectEnvelope) (rim.Object, error) {
	var o rim.Object
	switch env.Kind {
	case "Organization":
		o = new(rim.Organization)
	case "User":
		o = new(rim.User)
	case "Service":
		o = new(rim.Service)
	case "ServiceBinding":
		o = new(rim.ServiceBinding)
	case "SpecificationLink":
		o = new(rim.SpecificationLink)
	case "Association":
		o = new(rim.Association)
	case "Classification":
		o = new(rim.Classification)
	case "ClassificationScheme":
		o = new(rim.ClassificationScheme)
	case "ClassificationNode":
		o = new(rim.ClassificationNode)
	case "RegistryPackage":
		o = new(rim.RegistryPackage)
	case "ExternalLink":
		o = new(rim.ExternalLink)
	case "ExternalIdentifier":
		o = new(rim.ExternalIdentifier)
	case "AuditableEvent":
		o = new(rim.AuditableEvent)
	case "AdhocQuery":
		o = new(rim.AdhocQuery)
	case "ExtrinsicObject":
		o = new(rim.ExtrinsicObject)
	default:
		return nil, fmt.Errorf("store: snapshot contains unknown kind %q", env.Kind)
	}
	if err := json.Unmarshal(env.Data, o); err != nil {
		return nil, fmt.Errorf("store: decode %s: %w", env.Kind, err)
	}
	return o, nil
}
