package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rim"
)

// TestInsertConcurrentSameID exercises the check-then-insert path under
// contention: exactly one of N racing Inserts of the same id may win, the
// rest must fail with ErrExists (the TOCTOU regression this guards
// against let two goroutines both pass the existence check).
func TestInsertConcurrentSameID(t *testing.T) {
	s := New()
	const goroutines = 16
	objs := make([]*rim.Organization, goroutines)
	for i := range objs {
		o := rim.NewOrganization(fmt.Sprintf("Org-%d", i))
		o.ID = "urn:uuid:contested"
		objs[i] = o
	}
	var wg sync.WaitGroup
	results := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Insert(objs[i])
		}(i)
	}
	wg.Wait()
	wins := 0
	for i, err := range results {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrExists):
		default:
			t.Fatalf("insert %d: unexpected error %v", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("wins = %d, want exactly 1", wins)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestTableSnapshotLifecycle(t *testing.T) {
	tab := NewNodeStateTable()
	now := time.Date(2011, 4, 22, 12, 0, 0, 0, time.UTC)
	tab.Upsert(NodeState{Host: "thermo.sdsu.edu", Load: 0.5, Updated: now})

	s1 := tab.Snapshot(now, 0)
	if s1.Gen() == 0 || s1.Len() != 1 {
		t.Fatalf("first snapshot gen=%d len=%d", s1.Gen(), s1.Len())
	}
	if got := tab.Snapshot(now, 0); got != s1 {
		t.Fatal("coherent snapshot should be served without republish")
	}

	// A mutation invalidates the published snapshot: with no staleness
	// allowance the next read republishes and sees the write.
	tab.Upsert(NodeState{Host: "exergy.sdsu.edu", Load: 2.5, Updated: now})
	s2 := tab.Snapshot(now, 0)
	if s2 == s1 || s2.Len() != 2 || s2.Gen() <= s1.Gen() {
		t.Fatalf("post-write snapshot gen=%d len=%d", s2.Gen(), s2.Len())
	}
	if row, ok := s2.Get("exergy.sdsu.edu"); !ok || row.Load != 2.5 {
		t.Fatalf("snapshot row = %+v %v", row, ok)
	}

	// Within the staleness guard a changed table still serves the old
	// snapshot lock-free; past the guard it republishes.
	tab.Delete("exergy.sdsu.edu")
	if got := tab.Snapshot(now.Add(10*time.Second), 25*time.Second); got != s2 {
		t.Fatal("within maxAge the stale snapshot should be served")
	}
	s3 := tab.Snapshot(now.Add(30*time.Second), 25*time.Second)
	if s3 == s2 || s3.Len() != 1 {
		t.Fatalf("expired guard should republish, got len=%d", s3.Len())
	}
}

func TestTableSnapshotConcurrent(t *testing.T) {
	tab := NewNodeStateTable()
	now := time.Date(2011, 4, 22, 12, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tab.Upsert(NodeState{Host: fmt.Sprintf("h%d.sdsu.edu", g), Load: float64(i)})
				tab.Publish(now)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				s := tab.Snapshot(now, time.Minute)
				if s == nil {
					t.Error("nil snapshot")
					return
				}
				s.Get("h0.sdsu.edu")
			}
		}()
	}
	wg.Wait()
	// The installed snapshot must never regress behind the latest publish.
	final := tab.Snapshot(now, 0)
	if final.Len() != 4 {
		t.Fatalf("final snapshot len = %d, want 4", final.Len())
	}
}

func TestServiceView(t *testing.T) {
	s := New()
	svc := rim.NewService("Adder", "Adds numbers <constraint><cpuLoad>load ls 1.0</cpuLoad></constraint>")
	svc.AddBinding("http://thermo.sdsu.edu:8080/Adder/addService")
	svc.AddBinding("http://exergy.sdsu.edu:8080/Adder/addService")
	if err := s.Put(svc); err != nil {
		t.Fatal(err)
	}
	org := rim.NewOrganization("SDSU")
	if err := s.Put(org); err != nil {
		t.Fatal(err)
	}

	v, err := s.ServiceView(svc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != svc.ID || v.Description != svc.Description.String() || len(v.URIs) != 2 {
		t.Fatalf("view = %+v", v)
	}
	// The view's URI slice is the caller's to keep: mutating it must not
	// leak back into the store.
	v.URIs[0] = "http://mutated.invalid/"
	v2, _ := s.ServiceView(svc.ID)
	if v2.URIs[0] != "http://thermo.sdsu.edu:8080/Adder/addService" {
		t.Fatal("view URIs alias store state")
	}

	if _, err := s.ServiceView("urn:uuid:ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing id: %v", err)
	}
	if _, err := s.ServiceView(org.ID); err == nil {
		t.Fatal("non-service id should error")
	}

	byName, err := s.ServiceViewByName("Adder")
	if err != nil || byName.ID != svc.ID {
		t.Fatalf("by name: %+v, %v", byName, err)
	}
	if _, err := s.ServiceViewByName("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing name: %v", err)
	}
}
