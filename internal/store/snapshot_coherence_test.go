package store

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/rim"
)

// TestSaveCoherentUnderConcurrentWrites is the regression test for the
// snapshot-coherence fix: Save used to read the object table, the content
// map, and the NodeState rows under three separate lock acquisitions, so a
// snapshot taken during LCM writes could mix the object list of one
// instant with the content map of a later one.
//
// The writer maintains the invariant "an ExtrinsicObject is only ever
// present while its content is present" by writing content before the
// object and deleting the object before the content. Any point-in-time
// snapshot therefore satisfies: every ExtrinsicObject's ContentID resolves
// in the snapshot's content map. The old multi-section Save violated this
// (object captured early, content captured after the writer deleted both).
func TestSaveCoherentUnderConcurrentWrites(t *testing.T) {
	s := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eo := rim.NewExtrinsicObject("artifact", "text/xml")
			eo.ContentID = eo.ID
			s.PutContent(eo.ContentID, []byte("payload"))
			if err := s.Put(eo); err != nil {
				t.Error(err)
				return
			}
			if err := s.Delete(eo.ID); err != nil {
				t.Error(err)
				return
			}
			s.DeleteContent(eo.ContentID)
		}
	}()

	type envelope struct {
		Kind string          `json:"kind"`
		Data json.RawMessage `json:"data"`
	}
	type snap struct {
		Objects []envelope        `json:"objects"`
		Content map[string][]byte `json:"content"`
	}
	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var got snap
		if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		for _, env := range got.Objects {
			if env.Kind != "ExtrinsicObject" {
				continue
			}
			var eo rim.ExtrinsicObject
			if err := json.Unmarshal(env.Data, &eo); err != nil {
				t.Fatal(err)
			}
			if _, ok := got.Content[eo.ContentID]; !ok {
				t.Fatalf("snapshot %d has object %s without its content %s: mixed-state snapshot", i, eo.ID, eo.ContentID)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestLoadKeepsNodeStateTableIdentity pins the recovery-critical fix: Load
// must restore rows into the existing NodeStateTable rather than swapping
// in a new one, because the balancer and the collector capture the table
// pointer at construction.
func TestLoadKeepsNodeStateTableIdentity(t *testing.T) {
	src := New()
	src.NodeState().Upsert(NodeState{Host: "alpha", Load: 2.5})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New()
	table := dst.NodeState() // captured before Load, like the balancer does
	table.Upsert(NodeState{Host: "stale", Load: 9})
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.NodeState() != table {
		t.Fatal("Load replaced the NodeStateTable pointer")
	}
	if _, ok := table.Get("stale"); ok {
		t.Fatal("Load kept a pre-restore row")
	}
	row, ok := table.Get("alpha")
	if !ok || row.Load != 2.5 {
		t.Fatalf("restored row = %+v, %v", row, ok)
	}
}

// TestLoadRestoresNameIndex pins the byName-index fix: Load used to leave
// the name index pointing at pre-Load data, so FindOneByName missed every
// restored object.
func TestLoadRestoresNameIndex(t *testing.T) {
	src := New()
	svc := rim.NewService("Weather", "")
	if err := src.Put(svc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dst.FindOneByName(rim.TypeService, "Weather")
	if err != nil {
		t.Fatalf("FindOneByName after Load: %v", err)
	}
	if got.Base().ID != svc.ID {
		t.Fatalf("found %s, want %s", got.Base().ID, svc.ID)
	}
}
