package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rim"
)

func TestPutGetIsolation(t *testing.T) {
	s := New()
	svc := rim.NewService("NodeStatus", "monitor")
	svc.AddBinding("http://thermo.sdsu.edu:8080/svc")
	if err := s.Put(svc); err != nil {
		t.Fatal(err)
	}
	// Mutating the original after Put must not affect the store.
	svc.Name = rim.NewIString("mutated")
	got, err := s.Get(svc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base().Name.String() != "NodeStatus" {
		t.Fatal("Put did not clone input")
	}
	// Mutating the Get result must not affect the store.
	got.Base().Name = rim.NewIString("mutated2")
	got2, _ := s.Get(svc.ID)
	if got2.Base().Name.String() != "NodeStatus" {
		t.Fatal("Get did not clone output")
	}
}

func TestInsertConflict(t *testing.T) {
	s := New()
	o := rim.NewOrganization("SDSU")
	if err := s.Insert(o); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(o); !errors.Is(err, ErrExists) {
		t.Fatalf("second insert: %v", err)
	}
	if err := s.Put(o); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
}

func TestGetDeleteNotFound(t *testing.T) {
	s := New()
	if _, err := s.Get("urn:uuid:nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := s.Delete("urn:uuid:nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing: %v", err)
	}
}

func TestTypeAndOwnerIndexes(t *testing.T) {
	s := New()
	org := rim.NewOrganization("SDSU")
	org.Owner = "urn:uuid:gold"
	svc := rim.NewService("Adder", "")
	svc.Owner = "urn:uuid:gold"
	other := rim.NewService("Other", "")
	for _, o := range []rim.Object{org, svc, other} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ByType(rim.TypeService); len(got) != 2 {
		t.Fatalf("ByType(Service) = %d", len(got))
	}
	if got := s.ByOwner("urn:uuid:gold"); len(got) != 2 {
		t.Fatalf("ByOwner = %d", len(got))
	}
	if err := s.Delete(svc.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.ByOwner("urn:uuid:gold"); len(got) != 1 {
		t.Fatalf("ByOwner after delete = %d", len(got))
	}
	if got := s.ByType(rim.TypeService); len(got) != 1 {
		t.Fatalf("ByType after delete = %d", len(got))
	}
}

func TestOwnerReindexOnPut(t *testing.T) {
	s := New()
	svc := rim.NewService("S", "")
	svc.Owner = "urn:uuid:a"
	if err := s.Put(svc); err != nil {
		t.Fatal(err)
	}
	svc.Owner = "urn:uuid:b"
	if err := s.Put(svc); err != nil {
		t.Fatal(err)
	}
	if got := s.ByOwner("urn:uuid:a"); len(got) != 0 {
		t.Fatal("stale owner index entry")
	}
	if got := s.ByOwner("urn:uuid:b"); len(got) != 1 {
		t.Fatal("new owner not indexed")
	}
}

func TestAssociationIndexes(t *testing.T) {
	s := New()
	org := rim.NewOrganization("SDSU")
	svc := rim.NewService("Adder", "")
	a := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
	for _, o := range []rim.Object{org, svc, a} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	from := s.AssociationsFrom(org.ID)
	if len(from) != 1 || from[0].TargetID != svc.ID {
		t.Fatalf("AssociationsFrom = %+v", from)
	}
	to := s.AssociationsTo(svc.ID)
	if len(to) != 1 || to[0].SourceID != org.ID {
		t.Fatalf("AssociationsTo = %+v", to)
	}
	if err := s.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	if len(s.AssociationsFrom(org.ID)) != 0 || len(s.AssociationsTo(svc.ID)) != 0 {
		t.Fatal("association index not cleaned on delete")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		name, pattern string
		want          bool
	}{
		{"DemoOrganization", "Demo%", true},
		{"DemoOrganization", "demo%", true}, // case-insensitive
		{"DemoOrg_AddDescription", "DemoOrg!%", false},
		{"DemoSrv_AddAccessUri", "DemoSrv%", true},
		{"NodeStatus", "%Status", true},
		{"NodeStatus", "%status%", true},
		{"NodeStatus", "Node_tatus", true},
		{"NodeStatus", "Node_status", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
		{"abc", "ab", false},
		{"aXbXc", "a%b%c", true},
		{"ac", "a%b%c", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.name, c.pattern); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.name, c.pattern, got, c.want)
		}
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// Every string matches "%" and itself.
	f := func(s string) bool {
		return MatchLike(s, "%") && MatchLike(s, s+"%") && MatchLike(s, "%"+s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFindByName(t *testing.T) {
	s := New()
	names := []string{"DemoOrg_DeleteOrganization", "DemoOrg_AddDescription", "DemoOrg_ModifyService", "Unrelated"}
	for _, n := range names {
		if err := s.Put(rim.NewOrganization(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.FindByName(rim.TypeOrganization, "DemoOrg_%")
	if len(got) != 3 {
		t.Fatalf("FindByName = %d results", len(got))
	}
	// Sorted by name.
	if got[0].Base().Name.String() != "DemoOrg_AddDescription" {
		t.Fatalf("first result %q", got[0].Base().Name.String())
	}
}

func TestFindOneByName(t *testing.T) {
	s := New()
	if err := s.Put(rim.NewOrganization("SDSU")); err != nil {
		t.Fatal(err)
	}
	o, err := s.FindOneByName(rim.TypeOrganization, "sdsu")
	if err != nil || o.Base().Name.String() != "SDSU" {
		t.Fatalf("FindOneByName: %v", err)
	}
	if _, err := s.FindOneByName(rim.TypeOrganization, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if err := s.Put(rim.NewOrganization("SDSU")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FindOneByName(rim.TypeOrganization, "SDSU"); err == nil {
		t.Fatal("ambiguous name accepted")
	}
}

func TestContentStore(t *testing.T) {
	s := New()
	s.PutContent("c1", []byte("wsdl"))
	data, err := s.GetContent("c1")
	if err != nil || string(data) != "wsdl" {
		t.Fatalf("GetContent: %q, %v", data, err)
	}
	data[0] = 'X'
	again, _ := s.GetContent("c1")
	if string(again) != "wsdl" {
		t.Fatal("content aliased")
	}
	s.DeleteContent("c1")
	if _, err := s.GetContent("c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestNodeStateTable(t *testing.T) {
	tab := NewNodeStateTable()
	now := time.Date(2011, 4, 22, 12, 0, 0, 0, time.UTC)
	tab.Upsert(NodeState{Host: "thermo.sdsu.edu", Load: 0.5, MemoryB: 4 << 30, SwapB: 1 << 30, Updated: now})
	tab.Upsert(NodeState{Host: "exergy.sdsu.edu", Load: 2.5, MemoryB: 2 << 30, SwapB: 1 << 30, Updated: now.Add(-time.Minute)})

	row, ok := tab.Get("thermo.sdsu.edu")
	if !ok || row.Load != 0.5 {
		t.Fatalf("Get: %+v %v", row, ok)
	}
	if hosts := tab.Hosts(); len(hosts) != 2 || hosts[0] != "exergy.sdsu.edu" {
		t.Fatalf("Hosts = %v", hosts)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	fresh := tab.FreshRows(now, 30*time.Second)
	if len(fresh) != 1 || fresh[0].Host != "thermo.sdsu.edu" {
		t.Fatalf("FreshRows = %+v", fresh)
	}
	if all := tab.FreshRows(now, 0); len(all) != 2 {
		t.Fatalf("FreshRows(0) = %d", len(all))
	}
	tab.RecordFailure("down.sdsu.edu", now)
	tab.RecordFailure("down.sdsu.edu", now)
	if row, _ := tab.Get("down.sdsu.edu"); row.Failures != 2 {
		t.Fatalf("Failures = %d", row.Failures)
	}
	tab.Delete("down.sdsu.edu")
	if _, ok := tab.Get("down.sdsu.edu"); ok {
		t.Fatal("Delete failed")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	org := rim.NewOrganization("SDSU")
	org.Telephones = append(org.Telephones, rim.TelephoneNumber{CountryCode: "1", AreaCode: "619", Number: "594-5200", Type: "OfficePhone"})
	svc := rim.NewService("NodeStatus", "Service to monitor node status")
	svc.AddBinding("http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService")
	assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
	user := rim.NewUser("gold", rim.PersonName{FirstName: "G"})
	ev := rim.NewAuditableEvent(rim.EventCreated, user.ID, time.Date(2011, 4, 22, 1, 2, 3, 0, time.UTC), org.ID)
	q := rim.NewAdhocQuery("find", "SQL-92", "SELECT s.id FROM Service s")
	for _, o := range []rim.Object{org, svc, assoc, user, ev, q} {
		if err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	s.PutContent("c1", []byte{1, 2, 3})
	s.NodeState().Upsert(NodeState{Host: "thermo.sdsu.edu", Load: 1.25, MemoryB: 42, Updated: time.Date(2011, 4, 22, 2, 0, 0, 0, time.UTC)})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d objects, want %d", restored.Len(), s.Len())
	}
	got, err := restored.Get(svc.ID)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := got.(*rim.Service)
	if !ok {
		t.Fatalf("restored service has type %T", got)
	}
	if len(rs.Bindings) != 1 || rs.Bindings[0].AccessURI != "http://thermo.sdsu.edu:8080/NodeStatus/NodeStatusService" {
		t.Fatalf("restored bindings: %+v", rs.Bindings)
	}
	if from := restored.AssociationsFrom(org.ID); len(from) != 1 {
		t.Fatal("associations not reindexed after Load")
	}
	if data, err := restored.GetContent("c1"); err != nil || len(data) != 3 {
		t.Fatalf("restored content: %v %v", data, err)
	}
	if row, ok := restored.NodeState().Get("thermo.sdsu.edu"); !ok || row.Load != 1.25 {
		t.Fatalf("restored nodestate: %+v %v", row, ok)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Load(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	bad := []byte(`{"objects":[{"kind":"Martian","data":{}}]}`)
	if err := s.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				o := rim.NewOrganization(fmt.Sprintf("org-%d-%d", i, j))
				if err := s.Put(o); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(o.ID); err != nil {
					t.Error(err)
					return
				}
				s.FindByName(rim.TypeOrganization, "org-%")
				s.NodeState().Upsert(NodeState{Host: fmt.Sprintf("h%d", i), Load: float64(j)})
				s.NodeState().Rows()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d", s.Len())
	}
}
