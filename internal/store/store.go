// Package store is the registry's persistence layer — the role Apache Derby
// plays under freebXML (thesis §2.2.3). It keeps every ebRIM object in
// in-memory tables with secondary indexes (by type, by name, by owner, and
// association endpoints), holds the repository's content items, and owns
// the NodeState table of Figure 3.2 that the load-balancing scheme reads at
// discovery time. Snapshots serialize the whole store to JSON so cmd
// binaries can persist across restarts.
//
// All methods are safe for concurrent use. Objects are deep-copied on Put
// and on Get, so callers can never alias the store's internal graph.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/rim"
)

// ErrNotFound is returned when an object id does not exist.
var ErrNotFound = fmt.Errorf("store: object not found")

// ErrExists is returned by Insert when the id is already present.
var ErrExists = fmt.Errorf("store: object already exists")

// Store is the in-memory registry database.
type Store struct {
	mu      sync.RWMutex
	objects map[string]rim.Object                  // guarded by mu
	byType  map[rim.ObjectType]map[string]struct{} // guarded by mu
	byOwner map[string]map[string]struct{}         // guarded by mu
	// byName indexes type → lowercase name → ids, so exact-name lookups
	// (FindOneByName, the discovery-by-name path) need not scan a type.
	byName map[rim.ObjectType]map[string]map[string]struct{} // guarded by mu
	// Association endpoint indexes: object id -> association ids.
	assocBySource map[string]map[string]struct{} // guarded by mu
	assocByTarget map[string]map[string]struct{} // guarded by mu
	// Repository content, keyed by ExtrinsicObject ContentID.
	content map[string][]byte // guarded by mu

	nodeState *NodeStateTable // immutable after New; the table locks itself
}

// New creates an empty store.
func New() *Store {
	return &Store{
		objects:       make(map[string]rim.Object),
		byType:        make(map[rim.ObjectType]map[string]struct{}),
		byOwner:       make(map[string]map[string]struct{}),
		byName:        make(map[rim.ObjectType]map[string]map[string]struct{}),
		assocBySource: make(map[string]map[string]struct{}),
		assocByTarget: make(map[string]map[string]struct{}),
		content:       make(map[string][]byte),
		nodeState:     NewNodeStateTable(),
	}
}

// NodeState returns the store's NodeState table.
func (s *Store) NodeState() *NodeStateTable { return s.nodeState }

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Put inserts or replaces the object under its id. The object is cloned;
// later mutation of o does not affect the store.
func (s *Store) Put(o rim.Object) error {
	if o == nil {
		return fmt.Errorf("store: Put(nil)")
	}
	base := o.Base()
	if base.ID == "" {
		return fmt.Errorf("store: object has no id")
	}
	c := rim.CloneObject(o)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.objects[base.ID]; ok {
		s.unindexLocked(old)
	}
	s.objects[base.ID] = c
	s.indexLocked(c)
	return nil
}

// Insert is Put that fails if the id already exists. The existence check
// and the insert happen under one critical section, so of two concurrent
// Inserts of the same id exactly one succeeds.
func (s *Store) Insert(o rim.Object) error {
	if o == nil {
		return fmt.Errorf("store: Insert(nil)")
	}
	base := o.Base()
	if base.ID == "" {
		return fmt.Errorf("store: object has no id")
	}
	c := rim.CloneObject(o)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.objects[base.ID]; exists {
		return fmt.Errorf("%w: %s", ErrExists, base.ID)
	}
	s.objects[base.ID] = c
	s.indexLocked(c)
	return nil
}

// Get returns a deep copy of the object with the given id.
func (s *Store) Get(id string) (rim.Object, error) {
	s.mu.RLock()
	o, ok := s.objects[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return rim.CloneObject(o), nil
}

// Has reports whether id exists.
func (s *Store) Has(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[id]
	return ok
}

// Delete removes the object with the given id.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	s.unindexLocked(o)
	delete(s.objects, id)
	return nil
}

func (s *Store) indexLocked(o rim.Object) {
	b := o.Base()
	addIdx(s.byType, b.ObjectType, b.ID)
	if b.Owner != "" {
		addIdx(s.byOwner, b.Owner, b.ID)
	}
	names, ok := s.byName[b.ObjectType]
	if !ok {
		names = make(map[string]map[string]struct{})
		s.byName[b.ObjectType] = names
	}
	// Unnamed objects index under "" so wildcard scans still see them.
	addIdx(names, strings.ToLower(b.Name.String()), b.ID)
	if a, ok := o.(*rim.Association); ok {
		addIdx(s.assocBySource, a.SourceID, a.ID)
		addIdx(s.assocByTarget, a.TargetID, a.ID)
	}
}

func (s *Store) unindexLocked(o rim.Object) {
	b := o.Base()
	delIdx(s.byType, b.ObjectType, b.ID)
	if b.Owner != "" {
		delIdx(s.byOwner, b.Owner, b.ID)
	}
	if names, ok := s.byName[b.ObjectType]; ok {
		delIdx(names, strings.ToLower(b.Name.String()), b.ID)
		if len(names) == 0 {
			delete(s.byName, b.ObjectType)
		}
	}
	if a, ok := o.(*rim.Association); ok {
		delIdx(s.assocBySource, a.SourceID, a.ID)
		delIdx(s.assocByTarget, a.TargetID, a.ID)
	}
}

func addIdx[K comparable](m map[K]map[string]struct{}, k K, id string) {
	set, ok := m[k]
	if !ok {
		set = make(map[string]struct{})
		m[k] = set
	}
	set[id] = struct{}{}
}

func delIdx[K comparable](m map[K]map[string]struct{}, k K, id string) {
	if set, ok := m[k]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(m, k)
		}
	}
}

// ByType returns deep copies of all objects of type t, sorted by id for
// deterministic iteration. Sorting happens after the read lock is
// released so large scans don't hold up writers.
func (s *Store) ByType(t rim.ObjectType) []rim.Object {
	s.mu.RLock()
	out := s.collectLocked(s.byType[t])
	s.mu.RUnlock()
	sortByID(out)
	return out
}

// ByOwner returns deep copies of all objects owned by the given user id.
func (s *Store) ByOwner(owner string) []rim.Object {
	s.mu.RLock()
	out := s.collectLocked(s.byOwner[owner])
	s.mu.RUnlock()
	sortByID(out)
	return out
}

// collectLocked clones the objects for ids in map order; callers sort
// outside the critical section.
func (s *Store) collectLocked(ids map[string]struct{}) []rim.Object {
	out := make([]rim.Object, 0, len(ids))
	for id := range ids {
		if o, ok := s.objects[id]; ok {
			out = append(out, rim.CloneObject(o))
		}
	}
	return out
}

func sortByID(out []rim.Object) {
	sort.Slice(out, func(i, j int) bool { return out[i].Base().ID < out[j].Base().ID })
}

// All returns deep copies of every object, sorted by id.
func (s *Store) All() []rim.Object {
	s.mu.RLock()
	out := make([]rim.Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, rim.CloneObject(o))
	}
	s.mu.RUnlock()
	sortByID(out)
	return out
}

// MatchLike reports whether name matches a SQL LIKE pattern (% = any run,
// _ = any single character; matching is case-insensitive as in freebXML's
// Derby collation for names).
func MatchLike(name, pattern string) bool {
	return likeMatch(strings.ToLower(name), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Iterative greedy match with backtracking on '%'.
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// FindByName returns deep copies of objects of type t whose Name matches
// the LIKE pattern. A pattern without wildcards resolves through the name
// index; wildcard patterns walk the index's name buckets, so only matches
// are cloned, and sorting happens after the lock is released.
func (s *Store) FindByName(t rim.ObjectType, pattern string) []rim.Object {
	var out []rim.Object
	s.mu.RLock()
	if !strings.ContainsAny(pattern, "%_") {
		out = s.collectLocked(s.byName[t][strings.ToLower(pattern)])
	} else {
		lowered := strings.ToLower(pattern)
		for name, ids := range s.byName[t] {
			if likeMatch(name, lowered) {
				out = append(out, s.collectLocked(ids)...)
			}
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Base().Name.String() < out[j].Base().Name.String() })
	return out
}

// FindOneByName returns the unique object of type t with exactly the given
// name (case-insensitive). It returns ErrNotFound if absent and an error if
// the name is ambiguous. The lookup is a single name-index probe, not a
// type scan.
func (s *Store) FindOneByName(t rim.ObjectType, name string) (rim.Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, err := s.findOneByNameLocked(t, name)
	if err != nil {
		return nil, err
	}
	return rim.CloneObject(o), nil
}

// findOneByNameLocked resolves the unique object of type t named name
// (case-insensitive) without cloning. Callers hold mu.
func (s *Store) findOneByNameLocked(t rim.ObjectType, name string) (rim.Object, error) {
	ids := s.byName[t][strings.ToLower(name)]
	if len(ids) == 0 {
		return nil, notFoundByNameErr(t, name)
	}
	if len(ids) > 1 {
		return nil, ambiguousNameErr(t, name)
	}
	for id := range ids {
		return s.objects[id], nil
	}
	return nil, notFoundByNameErr(t, name)
}

// notFoundByNameErr builds the ErrNotFound for a name lookup. Error
// construction lives off the discovery hot path.
//
//repolint:coldpath error construction, off the measured discovery path
func notFoundByNameErr(t rim.ObjectType, name string) error {
	return fmt.Errorf("%w: %s named %q", ErrNotFound, t.Short(), name)
}

// ambiguousNameErr reports a name resolving to more than one object.
//
//repolint:coldpath error construction, off the measured discovery path
func ambiguousNameErr(t rim.ObjectType, name string) error {
	return fmt.Errorf("store: name %q is ambiguous for %s", name, t.Short())
}

// AssociationsFrom returns deep copies of the associations whose source is
// the given object id.
func (s *Store) AssociationsFrom(sourceID string) []*rim.Association {
	s.mu.RLock()
	out := s.assocsLocked(s.assocBySource, sourceID)
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AssociationsTo returns deep copies of the associations whose target is
// the given object id.
func (s *Store) AssociationsTo(targetID string) []*rim.Association {
	s.mu.RLock()
	out := s.assocsLocked(s.assocByTarget, targetID)
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// assocsLocked clones the associations for key in map order; callers sort
// outside the critical section.
func (s *Store) assocsLocked(idx map[string]map[string]struct{}, key string) []*rim.Association {
	var out []*rim.Association
	for id := range idx[key] {
		if a, ok := s.objects[id].(*rim.Association); ok {
			out = append(out, a.Clone())
		}
	}
	return out
}

// DiscoveryView is the minimal projection of a Service the discovery fast
// path needs: id, description text (which may embed a constraint block),
// and the access URIs in stored order. All fields are immutable strings,
// so building a view never deep-clones the service's object graph — the
// arena-free alternative to Get on the hot path.
type DiscoveryView struct {
	ID          string
	Description string
	URIs        []string
}

// ServiceView builds the discovery projection for the service with the
// given id. It returns ErrNotFound for unknown ids and an error when the
// object is not a Service.
//
//repolint:hotpath warm discovery chain: id-keyed view load under RLock
func (s *Store) ServiceView(id string) (DiscoveryView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[id]
	if !ok {
		return DiscoveryView{}, notFoundIDErr(id)
	}
	return s.viewLocked(o)
}

// notFoundIDErr builds the ErrNotFound for an id lookup, off the hot path.
//
//repolint:coldpath error construction, off the measured discovery path
func notFoundIDErr(id string) error {
	return fmt.Errorf("%w: %s", ErrNotFound, id)
}

// ServiceViewByName builds the discovery projection for the unique service
// with the given name (case-insensitive), resolved through the name index.
//
//repolint:hotpath warm discovery chain: name-keyed view load under RLock
func (s *Store) ServiceViewByName(name string) (DiscoveryView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, err := s.findOneByNameLocked(rim.TypeService, name)
	if err != nil {
		return DiscoveryView{}, err
	}
	return s.viewLocked(o)
}

func (s *Store) viewLocked(o rim.Object) (DiscoveryView, error) {
	svc, ok := o.(*rim.Service)
	if !ok {
		return DiscoveryView{}, notServiceErr(o)
	}
	v := DiscoveryView{ID: svc.ID, Description: svc.Description.String()}
	if len(svc.Bindings) > 0 {
		v.URIs = make([]string, 0, len(svc.Bindings))
		for _, b := range svc.Bindings {
			if b.AccessURI != "" {
				v.URIs = append(v.URIs, b.AccessURI)
			}
		}
	}
	return v, nil
}

// notServiceErr reports a non-service object on the discovery path.
//
//repolint:coldpath error construction, off the measured discovery path
func notServiceErr(o rim.Object) error {
	return fmt.Errorf("store: %s is not a service", o.Base().ID)
}

// PutContent stores a repository payload under the given content id.
func (s *Store) PutContent(contentID string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.content[contentID] = append([]byte(nil), data...)
}

// GetContent retrieves a repository payload.
func (s *Store) GetContent(contentID string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.content[contentID]
	if !ok {
		return nil, fmt.Errorf("%w: content %s", ErrNotFound, contentID)
	}
	return append([]byte(nil), data...), nil
}

// DeleteContent removes a repository payload if present.
func (s *Store) DeleteContent(contentID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.content, contentID)
}
