package store

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rim"
)

// Property: snapshot round-trip preserves arbitrary organization names,
// descriptions and slot values (including control characters and unicode
// that must survive JSON encoding).
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(names []string, slotVal string) bool {
		s := New()
		ids := make([]string, 0, len(names))
		for i, name := range names {
			if i >= 16 {
				break
			}
			if name == "" {
				name = "x"
			}
			org := rim.NewOrganization(name)
			org.SetSlot("blob", slotVal)
			if err := s.Put(org); err != nil {
				return false
			}
			ids = append(ids, org.ID)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		restored := New()
		if err := restored.Load(&buf); err != nil {
			return false
		}
		if restored.Len() != s.Len() {
			return false
		}
		for i, id := range ids {
			o, err := restored.Get(id)
			if err != nil {
				return false
			}
			wantName := names[i]
			if wantName == "" {
				wantName = "x"
			}
			if o.Base().Name.String() != wantName {
				return false
			}
			if v, ok := o.Base().SlotValue("blob"); !ok || v != slotVal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the type index always agrees with a full scan.
func TestTypeIndexConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New()
		var ids []string
		for i, op := range ops {
			if i >= 64 {
				break
			}
			switch op % 3 {
			case 0:
				o := rim.NewOrganization(fmt.Sprintf("o%d", i))
				s.Put(o)
				ids = append(ids, o.ID)
			case 1:
				svc := rim.NewService(fmt.Sprintf("s%d", i), "")
				svc.AddBinding(fmt.Sprintf("http://h%d/x", i))
				s.Put(svc)
				ids = append(ids, svc.ID)
			case 2:
				if len(ids) > 0 {
					s.Delete(ids[int(op)%len(ids)])
				}
			}
		}
		orgIdx := len(s.ByType(rim.TypeOrganization))
		svcIdx := len(s.ByType(rim.TypeService))
		orgScan, svcScan := 0, 0
		for _, o := range s.All() {
			switch o.Base().ObjectType {
			case rim.TypeOrganization:
				orgScan++
			case rim.TypeService:
				svcScan++
			}
		}
		return orgIdx == orgScan && svcIdx == svcScan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FindByName(pattern) returns exactly the objects whose names
// MatchLike the pattern.
func TestFindByNameAgreesWithMatchLike(t *testing.T) {
	f := func(names []string, rawPattern string) bool {
		pattern := rawPattern
		if pattern == "" {
			pattern = "%"
		}
		s := New()
		want := 0
		for i, n := range names {
			if i >= 16 {
				break
			}
			if n == "" {
				n = "x"
			}
			if err := s.Put(rim.NewOrganization(n)); err != nil {
				return false
			}
			if MatchLike(n, pattern) {
				want++
			}
		}
		return len(s.FindByName(rim.TypeOrganization, pattern)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
