package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HostHealth summarizes the collector's confidence in a host's row. The
// zero value is HealthHealthy so rows written before the fault-tolerance
// layer existed (snapshots, direct Upserts) read as healthy.
type HostHealth int

// Host health states, in decreasing order of trust.
const (
	// HealthHealthy means the latest collection succeeded.
	HealthHealthy HostHealth = iota
	// HealthDegraded means recent collections failed but the host's
	// breaker (if any) is still closed — the row may be stale.
	HealthDegraded
	// HealthQuarantined means the host's breaker is open (or half-open):
	// discovery should exclude it until a probe succeeds.
	HealthQuarantined
)

// String names the health state for reports and the web UI.
func (h HostHealth) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	default:
		return "unknown-health"
	}
}

// NodeState is one row of the table in thesis Figure 3.2: the most recent
// performance sample for a host. HOST (the hostname part of an access URI)
// is the primary key; LOAD is the run-queue CPU load; MEMORY and SWAPMEMORY
// are the available physical and swap memory in bytes. Updated records when
// the row was written so readers can reason about staleness.
type NodeState struct {
	Host    string
	Load    float64
	MemoryB int64
	SwapB   int64
	// NetDelayMs is the §5.2 future-work extension: observed network
	// delay to the host in milliseconds (0 when not measured).
	NetDelayMs float64
	Updated    time.Time
	// Failures counts consecutive collection failures; a row with recent
	// failures is treated as unknown by strict policies.
	Failures int
	// Health is the collector's verdict on the row (see HostHealth);
	// quarantined hosts are excluded from discovery.
	Health HostHealth
}

// NodeStateTable is the concurrent NodeState store keyed by host. Writers
// (the collector, snapshot restore) mutate rows under mu; the discovery
// read path instead consumes an immutable RCU-style snapshot published via
// an atomic pointer swap (see Snapshot), so lookups never contend with a
// collector sweep in progress.
type NodeStateTable struct {
	mu   sync.RWMutex
	rows map[string]NodeState // guarded by mu

	// version counts row mutations; a snapshot remembers the version it
	// was built at so readers can detect staleness without locking.
	version atomic.Uint64
	// gen counts publishes, for Decision audit trails.
	gen  atomic.Uint64
	snap atomic.Pointer[TableSnapshot]
}

// NewNodeStateTable creates an empty table.
func NewNodeStateTable() *NodeStateTable {
	return &NodeStateTable{rows: make(map[string]NodeState)}
}

// Upsert writes the row for row.Host, replacing any previous row.
func (t *NodeStateTable) Upsert(row NodeState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[row.Host] = row
	t.version.Add(1)
}

// RecordFailure increments the failure counter for host, creating the row
// if needed, and stamps the failure time. The row drops to HealthDegraded
// (unless already quarantined).
func (t *NodeStateTable) RecordFailure(host string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[host]
	row.Host = host
	row.Failures++
	row.Updated = at
	if row.Health == HealthHealthy {
		row.Health = HealthDegraded
	}
	t.rows[host] = row
	t.version.Add(1)
}

// SetHealth sets host's health verdict, creating the row if needed. The
// Updated stamp is left untouched: health is the collector's judgement, not
// a measurement.
func (t *NodeStateTable) SetHealth(host string, h HostHealth) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[host]
	row.Host = host
	row.Health = h
	t.rows[host] = row
	t.version.Add(1)
}

// Reset replaces every row with the given set, keeping the table's
// identity so holders of the pointer (balancer, collector) observe the
// restored rows. Snapshot restore and WAL recovery use it.
func (t *NodeStateTable) Reset(rows []NodeState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = make(map[string]NodeState, len(rows))
	for _, r := range rows {
		t.rows[r.Host] = r
	}
	t.version.Add(1)
}

// Get returns the row for host and whether it exists.
func (t *NodeStateTable) Get(host string) (NodeState, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[host]
	return row, ok
}

// Delete removes the row for host.
func (t *NodeStateTable) Delete(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rows, host)
	t.version.Add(1)
}

// Hosts returns the known hostnames in sorted order.
func (t *NodeStateTable) Hosts() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hosts := make([]string, 0, len(t.rows))
	for h := range t.rows {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Rows returns all rows sorted by host.
func (t *NodeStateTable) Rows() []NodeState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]NodeState, 0, len(t.rows))
	for _, r := range t.rows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Host < rows[j].Host })
	return rows
}

// Len returns the number of rows.
func (t *NodeStateTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// FreshRows returns the rows whose Updated stamp is no older than maxAge
// relative to now; maxAge <= 0 disables the staleness filter.
func (t *NodeStateTable) FreshRows(now time.Time, maxAge time.Duration) []NodeState {
	rows := t.Rows()
	if maxAge <= 0 {
		return rows
	}
	fresh := rows[:0]
	for _, r := range rows {
		if now.Sub(r.Updated) <= maxAge {
			fresh = append(fresh, r)
		}
	}
	return fresh
}

// TableSnapshot is an immutable point-in-time copy of a NodeStateTable,
// published by Publish and read lock-free by the discovery path. Rows are
// never mutated after the snapshot is built, so any number of concurrent
// readers may consult it while the collector rewrites the live table.
type TableSnapshot struct {
	gen     uint64
	version uint64
	taken   time.Time
	rows    map[string]NodeState // immutable after Publish
}

// Gen is the snapshot's publish generation number, recorded on discovery
// Decisions for auditability.
func (s *TableSnapshot) Gen() uint64 { return s.gen }

// Taken is the time the snapshot was built.
func (s *TableSnapshot) Taken() time.Time { return s.taken }

// Len returns the number of rows in the snapshot.
func (s *TableSnapshot) Len() int { return len(s.rows) }

// Get returns the snapshot's row for host and whether it exists.
//
//repolint:hotpath warm discovery chain: per-binding row lookup, lock-free
func (s *TableSnapshot) Get(host string) (NodeState, bool) {
	row, ok := s.rows[host]
	return row, ok
}

// Publish builds an immutable snapshot of the current rows and installs it
// with an atomic pointer swap. The collector calls this once per sweep;
// discovery readers then consult the snapshot without taking any lock. A
// concurrent Publish racing with a newer one never installs the older
// snapshot over the newer.
func (t *NodeStateTable) Publish(now time.Time) *TableSnapshot {
	t.mu.RLock()
	version := t.version.Load()
	rows := make(map[string]NodeState, len(t.rows))
	for k, v := range t.rows {
		rows[k] = v
	}
	t.mu.RUnlock()
	s := &TableSnapshot{gen: t.gen.Add(1), version: version, taken: now, rows: rows}
	for {
		old := t.snap.Load()
		if old != nil && old.version > s.version {
			return old
		}
		if t.snap.CompareAndSwap(old, s) {
			return s
		}
	}
}

// Snapshot returns a snapshot suitable for a discovery read at time now.
//
//   - If the published snapshot is coherent (the table has not changed
//     since it was built), it is returned with no locking at all — the
//     steady-state fast path between collector sweeps.
//   - If the table has changed but the published snapshot is no older
//     than maxAge, the slightly stale snapshot is still served lock-free:
//     this is the RCU tolerance window that keeps discovery from
//     contending with an in-progress collector sweep. The collector
//     publishes after every sweep, so staleness is bounded by the sweep
//     period plus maxAge.
//   - Otherwise (maxAge <= 0, or the guard expired) a fresh snapshot is
//     built and published, so callers always observe committed writes.
//
// Published returns the currently installed snapshot without building a
// fresh one (nil before the first Publish). Metrics exposition uses it to
// report snapshot generation and age without perturbing what it measures:
// a scrape must not republish and thereby reset the age it is reading.
func (t *NodeStateTable) Published() *TableSnapshot {
	return t.snap.Load()
}

//repolint:hotpath warm discovery chain: steady state is one atomic load
func (t *NodeStateTable) Snapshot(now time.Time, maxAge time.Duration) *TableSnapshot {
	s := t.snap.Load()
	if s != nil {
		if s.version == t.version.Load() {
			return s
		}
		if maxAge > 0 && now.Sub(s.taken) <= maxAge {
			return s
		}
	}
	return t.Publish(now)
}
