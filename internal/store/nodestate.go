package store

import (
	"sort"
	"sync"
	"time"
)

// NodeState is one row of the table in thesis Figure 3.2: the most recent
// performance sample for a host. HOST (the hostname part of an access URI)
// is the primary key; LOAD is the run-queue CPU load; MEMORY and SWAPMEMORY
// are the available physical and swap memory in bytes. Updated records when
// the row was written so readers can reason about staleness.
type NodeState struct {
	Host    string
	Load    float64
	MemoryB int64
	SwapB   int64
	// NetDelayMs is the §5.2 future-work extension: observed network
	// delay to the host in milliseconds (0 when not measured).
	NetDelayMs float64
	Updated    time.Time
	// Failures counts consecutive collection failures; a row with recent
	// failures is treated as unknown by strict policies.
	Failures int
}

// NodeStateTable is the concurrent NodeState store keyed by host.
type NodeStateTable struct {
	mu   sync.RWMutex
	rows map[string]NodeState // guarded by mu
}

// NewNodeStateTable creates an empty table.
func NewNodeStateTable() *NodeStateTable {
	return &NodeStateTable{rows: make(map[string]NodeState)}
}

// Upsert writes the row for row.Host, replacing any previous row.
func (t *NodeStateTable) Upsert(row NodeState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[row.Host] = row
}

// RecordFailure increments the failure counter for host, creating the row
// if needed, and stamps the failure time.
func (t *NodeStateTable) RecordFailure(host string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[host]
	row.Host = host
	row.Failures++
	row.Updated = at
	t.rows[host] = row
}

// Get returns the row for host and whether it exists.
func (t *NodeStateTable) Get(host string) (NodeState, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[host]
	return row, ok
}

// Delete removes the row for host.
func (t *NodeStateTable) Delete(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rows, host)
}

// Hosts returns the known hostnames in sorted order.
func (t *NodeStateTable) Hosts() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hosts := make([]string, 0, len(t.rows))
	for h := range t.rows {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Rows returns all rows sorted by host.
func (t *NodeStateTable) Rows() []NodeState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]NodeState, 0, len(t.rows))
	for _, r := range t.rows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Host < rows[j].Host })
	return rows
}

// Len returns the number of rows.
func (t *NodeStateTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// FreshRows returns the rows whose Updated stamp is no older than maxAge
// relative to now; maxAge <= 0 disables the staleness filter.
func (t *NodeStateTable) FreshRows(now time.Time, maxAge time.Duration) []NodeState {
	rows := t.Rows()
	if maxAge <= 0 {
		return rows
	}
	fresh := rows[:0]
	for _, r := range rows {
		if now.Sub(r.Updated) <= maxAge {
			fresh = append(fresh, r)
		}
	}
	return fresh
}
