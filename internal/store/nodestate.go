package store

import (
	"sort"
	"sync"
	"time"
)

// HostHealth summarizes the collector's confidence in a host's row. The
// zero value is HealthHealthy so rows written before the fault-tolerance
// layer existed (snapshots, direct Upserts) read as healthy.
type HostHealth int

// Host health states, in decreasing order of trust.
const (
	// HealthHealthy means the latest collection succeeded.
	HealthHealthy HostHealth = iota
	// HealthDegraded means recent collections failed but the host's
	// breaker (if any) is still closed — the row may be stale.
	HealthDegraded
	// HealthQuarantined means the host's breaker is open (or half-open):
	// discovery should exclude it until a probe succeeds.
	HealthQuarantined
)

// String names the health state for reports and the web UI.
func (h HostHealth) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	default:
		return "unknown-health"
	}
}

// NodeState is one row of the table in thesis Figure 3.2: the most recent
// performance sample for a host. HOST (the hostname part of an access URI)
// is the primary key; LOAD is the run-queue CPU load; MEMORY and SWAPMEMORY
// are the available physical and swap memory in bytes. Updated records when
// the row was written so readers can reason about staleness.
type NodeState struct {
	Host    string
	Load    float64
	MemoryB int64
	SwapB   int64
	// NetDelayMs is the §5.2 future-work extension: observed network
	// delay to the host in milliseconds (0 when not measured).
	NetDelayMs float64
	Updated    time.Time
	// Failures counts consecutive collection failures; a row with recent
	// failures is treated as unknown by strict policies.
	Failures int
	// Health is the collector's verdict on the row (see HostHealth);
	// quarantined hosts are excluded from discovery.
	Health HostHealth
}

// NodeStateTable is the concurrent NodeState store keyed by host.
type NodeStateTable struct {
	mu   sync.RWMutex
	rows map[string]NodeState // guarded by mu
}

// NewNodeStateTable creates an empty table.
func NewNodeStateTable() *NodeStateTable {
	return &NodeStateTable{rows: make(map[string]NodeState)}
}

// Upsert writes the row for row.Host, replacing any previous row.
func (t *NodeStateTable) Upsert(row NodeState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[row.Host] = row
}

// RecordFailure increments the failure counter for host, creating the row
// if needed, and stamps the failure time. The row drops to HealthDegraded
// (unless already quarantined).
func (t *NodeStateTable) RecordFailure(host string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[host]
	row.Host = host
	row.Failures++
	row.Updated = at
	if row.Health == HealthHealthy {
		row.Health = HealthDegraded
	}
	t.rows[host] = row
}

// SetHealth sets host's health verdict, creating the row if needed. The
// Updated stamp is left untouched: health is the collector's judgement, not
// a measurement.
func (t *NodeStateTable) SetHealth(host string, h HostHealth) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[host]
	row.Host = host
	row.Health = h
	t.rows[host] = row
}

// Get returns the row for host and whether it exists.
func (t *NodeStateTable) Get(host string) (NodeState, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[host]
	return row, ok
}

// Delete removes the row for host.
func (t *NodeStateTable) Delete(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rows, host)
}

// Hosts returns the known hostnames in sorted order.
func (t *NodeStateTable) Hosts() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hosts := make([]string, 0, len(t.rows))
	for h := range t.rows {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Rows returns all rows sorted by host.
func (t *NodeStateTable) Rows() []NodeState {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := make([]NodeState, 0, len(t.rows))
	for _, r := range t.rows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Host < rows[j].Host })
	return rows
}

// Len returns the number of rows.
func (t *NodeStateTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// FreshRows returns the rows whose Updated stamp is no older than maxAge
// relative to now; maxAge <= 0 disables the staleness filter.
func (t *NodeStateTable) FreshRows(now time.Time, maxAge time.Duration) []NodeState {
	rows := t.Rows()
	if maxAge <= 0 {
		return rows
	}
	fresh := rows[:0]
	for _, r := range rows {
		if now.Sub(r.Updated) <= maxAge {
			fresh = append(fresh, r)
		}
	}
	return fresh
}
