// Package cataloger implements the registry's content validation and
// automatic cataloging features (thesis Table 1.1 "Advanced Features /
// Information Management" and §2.2.3): when repository content is
// published, a content-specific cataloger extracts metadata from the
// artifact into slots on its ExtrinsicObject so the content becomes
// discoverable, and a validator rejects artifacts that violate the
// content type's rules — freebXML does both automatically for WSDL.
//
// Shipped catalogers: WSDL (extracts service, port type, binding and
// namespace metadata; validates basic WS-I-profile-style structure) and
// XML (well-formedness only). The registry picks a cataloger by MIME type
// and content sniffing; unknown types are stored opaque.
package cataloger

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/rim"
)

// Slot names written by the shipped catalogers.
const (
	SlotWSDLTargetNamespace = "urn:ebxml:cataloger:wsdl:targetNamespace"
	SlotWSDLServices        = "urn:ebxml:cataloger:wsdl:services"
	SlotWSDLPortTypes       = "urn:ebxml:cataloger:wsdl:portTypes"
	SlotWSDLBindings        = "urn:ebxml:cataloger:wsdl:bindings"
	SlotWSDLSOAPAddresses   = "urn:ebxml:cataloger:wsdl:soapAddresses"
	SlotXMLRootElement      = "urn:ebxml:cataloger:xml:rootElement"
)

// Cataloger validates an artifact and decorates its metadata object.
type Cataloger interface {
	// Name identifies the cataloger in errors and audit logs.
	Name() string
	// Accepts reports whether this cataloger handles the artifact.
	Accepts(mimeType string, content []byte) bool
	// Catalog validates content and, on success, writes extracted
	// metadata into eo's slots.
	Catalog(eo *rim.ExtrinsicObject, content []byte) error
}

// Registry is an ordered cataloger chain; the first Accepts-ing cataloger
// wins.
type Registry struct {
	catalogers []Cataloger
}

// NewRegistry returns a chain with the shipped catalogers (WSDL, then
// generic XML).
func NewRegistry() *Registry {
	return &Registry{catalogers: []Cataloger{WSDL{}, XML{}}}
}

// Register appends a custom cataloger ("extensible via custom validation
// services", Table 1.1).
func (r *Registry) Register(c Cataloger) { r.catalogers = append(r.catalogers, c) }

// Catalog runs the first accepting cataloger; content nobody accepts is
// stored opaque without error.
func (r *Registry) Catalog(eo *rim.ExtrinsicObject, content []byte) error {
	for _, c := range r.catalogers {
		if c.Accepts(eo.MimeType, content) {
			if err := c.Catalog(eo, content); err != nil {
				return fmt.Errorf("%w (%s cataloger)", err, c.Name())
			}
			return nil
		}
	}
	eo.IsOpaque = true
	return nil
}

// --- WSDL -------------------------------------------------------------------

// WSDL catalogs WSDL 1.1 documents.
type WSDL struct{}

// Name implements Cataloger.
func (WSDL) Name() string { return "wsdl" }

// Accepts implements Cataloger: by MIME type or by sniffing a
// <definitions> root.
func (WSDL) Accepts(mimeType string, content []byte) bool {
	if strings.Contains(mimeType, "wsdl") {
		return true
	}
	if !strings.Contains(mimeType, "xml") && mimeType != "" {
		return false
	}
	head := string(content)
	if len(head) > 512 {
		head = head[:512]
	}
	return strings.Contains(head, "definitions")
}

// wsdlDoc captures the parts of a WSDL 1.1 document we validate/extract.
type wsdlDoc struct {
	XMLName         xml.Name      `xml:"definitions"`
	TargetNamespace string        `xml:"targetNamespace,attr"`
	PortTypes       []wsdlNamed   `xml:"portType"`
	Bindings        []wsdlNamed   `xml:"binding"`
	Services        []wsdlService `xml:"service"`
	Messages        []wsdlNamed   `xml:"message"`
}

type wsdlNamed struct {
	Name string `xml:"name,attr"`
}

type wsdlService struct {
	Name  string     `xml:"name,attr"`
	Ports []wsdlPort `xml:"port"`
}

type wsdlPort struct {
	Name    string      `xml:"name,attr"`
	Binding string      `xml:"binding,attr"`
	Address soapAddress `xml:"address"`
}

type soapAddress struct {
	Location string `xml:"location,attr"`
}

// Catalog implements Cataloger: validates the document shape and extracts
// names into slots.
func (WSDL) Catalog(eo *rim.ExtrinsicObject, content []byte) error {
	var doc wsdlDoc
	if err := xml.Unmarshal(content, &doc); err != nil {
		return fmt.Errorf("cataloger: not well-formed wsdl: %w", err)
	}
	if doc.XMLName.Local != "definitions" {
		return fmt.Errorf("cataloger: root element is <%s>, want <definitions>", doc.XMLName.Local)
	}
	if doc.TargetNamespace == "" {
		return fmt.Errorf("cataloger: missing targetNamespace")
	}
	if len(doc.Services) == 0 {
		return fmt.Errorf("cataloger: wsdl defines no <service>")
	}
	for _, svc := range doc.Services {
		if svc.Name == "" {
			return fmt.Errorf("cataloger: unnamed <service>")
		}
		if len(svc.Ports) == 0 {
			return fmt.Errorf("cataloger: service %s has no <port>", svc.Name)
		}
	}

	eo.SetSlot(SlotWSDLTargetNamespace, doc.TargetNamespace)
	eo.SetSlot(SlotWSDLServices, names(len(doc.Services), func(i int) string { return doc.Services[i].Name })...)
	if len(doc.PortTypes) > 0 {
		eo.SetSlot(SlotWSDLPortTypes, names(len(doc.PortTypes), func(i int) string { return doc.PortTypes[i].Name })...)
	}
	if len(doc.Bindings) > 0 {
		eo.SetSlot(SlotWSDLBindings, names(len(doc.Bindings), func(i int) string { return doc.Bindings[i].Name })...)
	}
	var addrs []string
	for _, svc := range doc.Services {
		for _, p := range svc.Ports {
			if p.Address.Location != "" {
				addrs = append(addrs, p.Address.Location)
			}
		}
	}
	if len(addrs) > 0 {
		eo.SetSlot(SlotWSDLSOAPAddresses, addrs...)
	}
	return nil
}

func names(n int, get func(int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = get(i)
	}
	return out
}

// --- generic XML -------------------------------------------------------------

// XML validates well-formedness and records the root element for any
// XML-typed content.
type XML struct{}

// Name implements Cataloger.
func (XML) Name() string { return "xml" }

// Accepts implements Cataloger.
func (XML) Accepts(mimeType string, content []byte) bool {
	return strings.Contains(mimeType, "xml")
}

// Catalog implements Cataloger.
func (XML) Catalog(eo *rim.ExtrinsicObject, content []byte) error {
	dec := xml.NewDecoder(strings.NewReader(string(content)))
	var root string
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("cataloger: not well-formed xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 && root == "" {
				root = t.Name.Local
			}
			depth++
		case xml.EndElement:
			depth--
		}
	}
	if root == "" {
		return fmt.Errorf("cataloger: xml document has no root element")
	}
	eo.SetSlot(SlotXMLRootElement, root)
	return nil
}
