package cataloger

import (
	"strings"
	"testing"

	"repro/internal/rim"
)

// sampleWSDL is a minimal but structurally complete WSDL 1.1 document for
// the thesis's Adder service.
const sampleWSDL = `<?xml version="1.0"?>
<definitions name="Adder"
    targetNamespace="http://sdsu.edu/adder"
    xmlns="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/">
  <message name="addRequest"/>
  <message name="addResponse"/>
  <portType name="AdderPortType">
    <operation name="add"/>
  </portType>
  <binding name="AdderSoapBinding" type="tns:AdderPortType"/>
  <service name="addService">
    <port name="AdderPort" binding="tns:AdderSoapBinding">
      <soap:address location="http://thermo.sdsu.edu:8080/Adder/addService"/>
    </port>
  </service>
</definitions>`

func TestWSDLCatalogExtractsMetadata(t *testing.T) {
	eo := rim.NewExtrinsicObject("adder.wsdl", "text/xml")
	if err := NewRegistry().Catalog(eo, []byte(sampleWSDL)); err != nil {
		t.Fatal(err)
	}
	if eo.IsOpaque {
		t.Fatal("wsdl stored opaque")
	}
	checks := map[string]string{
		SlotWSDLTargetNamespace: "http://sdsu.edu/adder",
		SlotWSDLServices:        "addService",
		SlotWSDLPortTypes:       "AdderPortType",
		SlotWSDLBindings:        "AdderSoapBinding",
		SlotWSDLSOAPAddresses:   "http://thermo.sdsu.edu:8080/Adder/addService",
	}
	for slot, want := range checks {
		if got, ok := eo.SlotValue(slot); !ok || got != want {
			t.Errorf("slot %s = %q, %v; want %q", slot, got, ok, want)
		}
	}
}

func TestWSDLValidationRejects(t *testing.T) {
	bad := map[string]string{
		"malformed":    `<definitions><unclosed>`,
		"wrong root":   `<notwsdl/>`,
		"no namespace": `<definitions><service name="s"><port name="p"/></service></definitions>`,
		"no services":  `<definitions targetNamespace="urn:x"/>`,
		"unnamed svc":  `<definitions targetNamespace="urn:x"><service><port name="p"/></service></definitions>`,
		"portless svc": `<definitions targetNamespace="urn:x"><service name="s"/></definitions>`,
	}
	for name, doc := range bad {
		eo := rim.NewExtrinsicObject("bad.wsdl", "application/wsdl+xml")
		if err := NewRegistry().Catalog(eo, []byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestXMLCataloger(t *testing.T) {
	eo := rim.NewExtrinsicObject("schema.xsd", "text/xml")
	if err := NewRegistry().Catalog(eo, []byte(`<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="x"/></schema>`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := eo.SlotValue(SlotXMLRootElement); got != "schema" {
		t.Fatalf("root slot = %q", got)
	}
	// Broken XML is rejected.
	eo2 := rim.NewExtrinsicObject("bad.xml", "text/xml")
	if err := NewRegistry().Catalog(eo2, []byte(`<a><b></a>`)); err == nil {
		t.Fatal("mismatched tags accepted")
	}
	eo3 := rim.NewExtrinsicObject("empty.xml", "text/xml")
	if err := NewRegistry().Catalog(eo3, nil); err == nil {
		t.Fatal("empty xml accepted")
	}
}

func TestUnknownTypesStoredOpaque(t *testing.T) {
	eo := rim.NewExtrinsicObject("logo.gif", "image/gif")
	if err := NewRegistry().Catalog(eo, []byte{0x47, 0x49, 0x46}); err != nil {
		t.Fatal(err)
	}
	if !eo.IsOpaque {
		t.Fatal("binary content not marked opaque")
	}
}

func TestWSDLSniffingWithoutMimeType(t *testing.T) {
	eo := rim.NewExtrinsicObject("adder", "text/xml")
	if err := NewRegistry().Catalog(eo, []byte(sampleWSDL)); err != nil {
		t.Fatal(err)
	}
	if _, ok := eo.SlotValue(SlotWSDLTargetNamespace); !ok {
		t.Fatal("wsdl not sniffed from xml mime type")
	}
}

type customCataloger struct{ called *bool }

func (c customCataloger) Name() string { return "custom" }
func (c customCataloger) Accepts(mimeType string, _ []byte) bool {
	return mimeType == "application/x-custom"
}
func (c customCataloger) Catalog(eo *rim.ExtrinsicObject, _ []byte) error {
	*c.called = true
	eo.SetSlot("custom", "yes")
	return nil
}

func TestCustomCatalogerExtensibility(t *testing.T) {
	r := NewRegistry()
	called := false
	r.Register(customCataloger{called: &called})
	eo := rim.NewExtrinsicObject("x", "application/x-custom")
	if err := r.Catalog(eo, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("custom cataloger not invoked")
	}
	if v, _ := eo.SlotValue("custom"); v != "yes" {
		t.Fatal("custom slot missing")
	}
}

func TestErrorMentionsCatalogerName(t *testing.T) {
	eo := rim.NewExtrinsicObject("bad.wsdl", "application/wsdl+xml")
	err := NewRegistry().Catalog(eo, []byte(`<definitions targetNamespace="urn:x"/>`))
	if err == nil || !strings.Contains(err.Error(), "wsdl") {
		t.Fatalf("error = %v", err)
	}
}
