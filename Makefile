GO ?= go

# Discovery benchmarks run a fixed iteration count so allocs/op is
# deterministic for a given code version and comparable across machines.
# BenchmarkHTTPDiscovery covers the end-to-end serving edge; its entries
# are gated at a tightened +5% (and the warm variant's zero-allocation
# baseline admits no growth at all).
BENCH_PATTERN = BenchmarkDiscovery|BenchmarkHTTPDiscovery
BENCH_TIME    = 2000x
BENCH_NOTE    = discovery fast path baseline; allocs/op gated at +25%, serving edge at +5%

.PHONY: all build test race vet lint check clean bench benchcheck smoke crashcheck escapecheck escapecheck-emit overloadcheck replcheck

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bin/repolint: $(shell find cmd/repolint tools/analyzers -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $@ ./cmd/repolint

# lint runs the repo's own invariant analyzers (wallclock, lockcheck,
# errwrap, norand, clienttimeout, structlog, atomicwrite, lockorder,
# ctxprop, gorolife, hotalloc, deadline, metricnames) over every package
# via the go vet driver.
lint: bin/repolint
	$(GO) vet -vettool=$(CURDIR)/bin/repolint ./...

# smoke boots a seeded in-process registry and fails on malformed
# /registry/metrics exposition or an unretrievable discovery trace.
smoke:
	$(GO) run ./cmd/scrapesmoke

# crashcheck runs the seeded crash-injection harness under the race
# detector: every seed tears the in-flight WAL record at a random byte
# offset and recovery must reproduce the acknowledged store exactly.
crashcheck:
	$(GO) test -race -count=1 -run 'Crash|WALEquivalent|Degraded|CheckpointRetention' ./internal/wal/ ./internal/registry/

# overloadcheck exercises the overload-resilience edge under the race
# detector: the admission controller's decision core, the shedding ×
# degraded-mode composition tests, the live-collector HTTP burst, and
# the seeded flash-crowd experiment (goodput, brownout ladder, replay).
overloadcheck:
	$(GO) test -race -count=1 -run 'Admit|Queue|AIMD|Brownout|Deadline|Wrap|Budget|Overload|DegradedStatic|FlashCrowd' \
		./internal/admit/ ./internal/registry/ ./internal/lbexp/

# replcheck runs the leader/follower replication suite under the race
# detector: the seeded WAL reader-vs-prune harness, cold-follower
# byte-identical convergence, resume-from-durable-position, leader
# restart mid-stream, 410 re-bootstrap, the seeded partition/lag
# harness, write redirects, and federated discovery over the pair.
replcheck:
	$(GO) test -race -count=1 -run 'Repl' \
		./internal/repl/ ./internal/wal/ ./internal/registry/ ./internal/federation/

# escapecheck recompiles the //repolint:hotpath packages with
# -gcflags=-m and fails on any heap escape inside an annotated function
# that is not in the committed ESCAPES_discovery.txt, or when the
# annotated-function set has drifted from the baseline.
escapecheck:
	$(GO) run ./cmd/escapecheck compare -baseline ESCAPES_discovery.txt

# escapecheck-emit regenerates the committed escape baseline.
escapecheck-emit:
	$(GO) run ./cmd/escapecheck emit -o ESCAPES_discovery.txt

check: build test vet lint smoke

# bench regenerates the committed discovery baseline BENCH_discovery.json.
# Collector variants are recorded but not gated (-gate-skip): a background
# sweep's allocations land on the measured goroutine nondeterministically.
bench:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| $(GO) run ./cmd/benchjson emit -gate-skip collector -tighten BenchmarkHTTPDiscovery -tighten-growth 0.05 \
			-note '$(BENCH_NOTE)' -o BENCH_discovery.json
	@echo wrote BENCH_discovery.json

# benchcheck reruns the discovery benchmarks and fails on a >25% allocs/op
# regression against the committed baseline (+5% for the serving-edge
# entries, recorded per-entry in the artifact), or when
# BENCH_discovery.json has drifted from the benchmarks declared in
# bench_test.go under either prefix.
benchcheck:
	$(GO) run ./cmd/benchjson sync -json BENCH_discovery.json -bench bench_test.go -prefix BenchmarkDiscovery
	$(GO) run ./cmd/benchjson sync -json BENCH_discovery.json -bench bench_test.go -prefix BenchmarkHTTPDiscovery
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) . \
		| $(GO) run ./cmd/benchjson emit -gate-skip collector -o bench_current.json
	$(GO) run ./cmd/benchjson compare -baseline BENCH_discovery.json -current bench_current.json -max-alloc-growth 0.25

clean:
	rm -rf bin bench_current.json
