GO ?= go

.PHONY: all build test race vet lint check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bin/repolint: $(shell find cmd/repolint tools/analyzers -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $@ ./cmd/repolint

# lint runs the repo's own invariant analyzers (wallclock, lockcheck,
# errwrap, norand, clienttimeout) over every package via the go vet driver.
lint: bin/repolint
	$(GO) vet -vettool=$(CURDIR)/bin/repolint ./...

check: build test vet lint

clean:
	rm -rf bin
