// Full networked deployment: everything over real HTTP sockets, nothing
// in-process — the closest analog to the thesis's volta.sdsu.edu testbed.
//
//  1. Start the registry server (SOAP + HTTP-GET bindings) on a loopback
//     port with the load-balancing policy enabled.
//  2. Start a NodeStatus HTTP daemon for each simulated host (Fig. 3.7).
//  3. Register a user over SOAP (wizard + challenge/response login).
//  4. Publish the NodeStatus service and a constrained worker service
//     through the AccessRegistry XML API.
//  5. Let the collector sweep the NodeStatus endpoints over HTTP.
//  6. Discover the worker over SOAP and watch the URI order react to
//     load injected on one host.
//
// Run with: go run ./examples/soapdeployment
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/accessregistry"
	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
)

func main() {
	clk := simclock.Real{}

	// --- 1. Registry server over HTTP -------------------------------
	reg, err := registry.New(registry.Config{Policy: core.PolicyLeastLoaded, FallbackAll: true})
	if err != nil {
		log.Fatal(err)
	}
	regURL := serve(reg.Handler(), "127.0.0.1")
	fmt.Println("registry listening at", regURL)

	// --- 2. NodeStatus daemons for two simulated hosts ---------------
	// Each daemon binds a distinct loopback IP so the NodeState table —
	// which is keyed by hostname exactly as in Fig. 3.2 — keeps one row
	// per "machine".
	hostA := hostsim.NewHost(hostsim.Config{Name: "thermo.sdsu.edu", Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 1 << 30}, clk.Now())
	hostB := hostsim.NewHost(hostsim.Config{Name: "exergy.sdsu.edu", Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 1 << 30}, clk.Now())
	nsA := serve(nodestatus.NewHandler(hostA, clk), "127.0.0.2") + "/NodeStatus/NodeStatusService"
	nsB := serve(nodestatus.NewHandler(hostB, clk), "127.0.0.3") + "/NodeStatus/NodeStatusService"
	fmt.Println("NodeStatus daemons at", nsA, "and", nsB)

	// --- 3. Register + login over SOAP --------------------------------
	conn := jaxr.Connect(regURL, nil)
	creds, _, err := conn.Register("gold", "gold123", rim.PersonName{FirstName: "Demo"})
	if err != nil {
		log.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		log.Fatal(err)
	}
	fmt.Println("logged in as gold")

	// --- 4. Publish via the AccessRegistry XML API --------------------
	// The worker's URIs reuse the NodeStatus daemons' host:port so that
	// binding hosts resolve to pollable endpoints on loopback.
	actionXML := fmt.Sprintf(`<root><action type="publish"><organization>
	  <name>San Diego State University (SDSU)</name>
	  <service><name>NodeStatus</name>
	    <description>Service to monitor node status</description>
	    <accessuri>%s %s</accessuri></service>
	  <service><name>Worker</name>
	    <description><constraint><cpuLoad>load ls 2.0</cpuLoad></constraint></description>
	    <accessuri>%s %s</accessuri></service>
	</organization></action></root>`,
		nsA, nsB, uriOn(nsA, "/Worker/workerService"), uriOn(nsB, "/Worker/workerService"))
	ar, err := accessregistry.NewFromReaders(nil, strings.NewReader(actionXML),
		accessregistry.WithConnection(conn))
	if err != nil {
		log.Fatal(err)
	}
	res, err := ar.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("published organization", res.PublishedOrgIDs[0])

	// --- 5. Collector sweep over HTTP ----------------------------------
	collector := nodestate.New(reg.Store.NodeState(), nodestatus.HTTPInvoker{}, clk,
		reg.QM.CollectionTargets, nodestate.WithPeriod(time.Second))
	collector.CollectOnce()
	fmt.Printf("collector populated %d NodeState rows\n", reg.Store.NodeState().Len())

	// --- 6. Discovery reacts to load -----------------------------------
	uris, _, err := conn.ServiceBindings("Worker")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worker URIs with both hosts idle:")
	for _, u := range uris {
		fmt.Println("  ", u)
	}

	// Overload host A and resample.
	for i := 0; i < 16; i++ {
		hostA.Submit(hostsim.Task{ID: fmt.Sprintf("burn-%d", i), CPUSeconds: 600, MemB: 1 << 20}, clk.Now())
	}
	clk.Sleep(50 * time.Millisecond) // let wall-clock load average react slightly
	hostA.AdvanceTo(clk.Now().Add(2 * time.Minute))
	collector.CollectOnce()

	uris, dec, err := conn.ServiceBindings("Worker")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after overloading %s (eligible=%d, ineligible=%d):\n", hostA.Name(), dec.Eligible, dec.Ineligible)
	for _, u := range uris {
		fmt.Println("  ", u)
	}
}

// serve starts an HTTP server on a random port of the given loopback IP,
// falling back to 127.0.0.1 on systems without extra loopback addresses.
func serve(h http.Handler, ip string) string {
	ln, err := net.Listen("tcp", ip+":0")
	if err != nil {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
	}
	go http.Serve(ln, h)
	return "http://" + ln.Addr().String()
}

// uriOn swaps the path of a base URI.
func uriOn(base, path string) string {
	if i := strings.Index(base, "/NodeStatus"); i >= 0 {
		return base[:i] + path
	}
	return base + path
}
