// Quickstart: an in-process load-balancing ebXML registry in ~80 lines.
//
// It walks the thesis's core loop end to end: register a user, publish an
// organization offering a Web Service whose description carries a
// <constraint> block, feed the NodeState table, and watch discovery return
// only the hosts that currently satisfy the constraints.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/store"
)

func main() {
	// A virtual clock keeps the run deterministic; 11:00 is inside the
	// service window used below.
	clk := simclock.NewManual(time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC))

	// The registry with the thesis's scheme enabled (PolicyFilter =
	// "return only satisfying hosts").
	reg, err := registry.New(registry.Config{Clock: clk, Policy: core.PolicyFilter})
	if err != nil {
		log.Fatal(err)
	}

	// Connect in localCall mode and run the registration wizard.
	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("gold", "gold123", rim.PersonName{FirstName: "Demo"})
	if err != nil {
		log.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		log.Fatal(err)
	}

	// Publish an organization and a constrained Web Service on two hosts.
	org := rim.NewOrganization("San Diego State University (SDSU)")
	svc := rim.NewService("ServiceAdder", `Adds numbers. <constraint>
	  <cpuLoad>load ls 1.0</cpuLoad>
	  <memory>memory gr 1GB</memory>
	  <starttime>0700</starttime><endtime>2200</endtime>
	</constraint>`)
	svc.AddBinding("http://thermo.sdsu.edu:8080/Adder/addService")
	svc.AddBinding("http://exergy.sdsu.edu:8080/Adder/addService")
	offer := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
	ids, err := conn.Submit(org, svc, offer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published organization %s\n", ids[0])

	// Normally the NodeStatus collector fills this table every 25 s;
	// here we write the rows directly: thermo is healthy, exergy is
	// overloaded.
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "thermo.sdsu.edu", Load: 0.3, MemoryB: 4 << 30, SwapB: 2 << 30, Updated: clk.Now()})
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "exergy.sdsu.edu", Load: 2.8, MemoryB: 4 << 30, SwapB: 2 << 30, Updated: clk.Now()})

	// Discovery: the registry checks the constraint against NodeState
	// and returns only thermo's URI.
	uris, dec, err := conn.ServiceBindings("ServiceAdder")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery returned %d of 2 bindings (eligible=%d, ineligible=%d):\n",
		len(uris), dec.Eligible, dec.Ineligible)
	for _, u := range uris {
		fmt.Println("  ", u)
	}

	// Load shifts: exergy recovers, thermo saturates. The next discovery
	// flips — transparently to the client.
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "thermo.sdsu.edu", Load: 3.9, MemoryB: 4 << 30, SwapB: 2 << 30, Updated: clk.Now()})
	reg.Store.NodeState().Upsert(store.NodeState{
		Host: "exergy.sdsu.edu", Load: 0.2, MemoryB: 4 << 30, SwapB: 2 << 30, Updated: clk.Now()})
	uris, _, _ = conn.ServiceBindings("ServiceAdder")
	fmt.Println("after load shift, discovery returns:")
	for _, u := range uris {
		fmt.Println("  ", u)
	}
}
