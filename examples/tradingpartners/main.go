// Trading-partners example: the end-to-end ebXML business scenario of
// thesis Figure 1.13, all six steps:
//
//  1. Company A reviews the registry's core library (the seeded
//     classification schemes),
//  2. builds an ebXML-compatible implementation (its CPP),
//  3. submits its business profile to the registry,
//  4. Company B discovers Company A's profile through the registry,
//  5. B proposes a business arrangement — a CPA composed from both CPPs,
//  6. and the parties conduct eBusiness over the reliable ebXML Messaging
//     Service, with a deliberately lossy network to show retransmission
//     and duplicate elimination at work.
//
// Run with: go run ./examples/tradingpartners
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"time"

	"repro/internal/bpss"
	"repro/internal/core"
	"repro/internal/cpa"
	"repro/internal/ebms"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/taxonomy"
)

func main() {
	reg, err := registry.New(registry.Config{Policy: core.PolicyFilter})
	if err != nil {
		log.Fatal(err)
	}
	ctx := reg.AdminContext()

	// Step 1: review the core library.
	nodes, err := taxonomy.NodesOf(reg.Store, taxonomy.SchemeNAICS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: registry core library holds %d NAICS sectors (among other schemes)\n", len(nodes))

	// Step 2: each company prepares its profile.
	profileA := &cpa.CPP{
		PartyID: "urn:duns:100000001", PartyName: "Company A",
		Roles:      []cpa.Role{{ProcessName: "PurchaseOrder", Name: "Buyer"}},
		Transports: []cpa.Transport{{Protocol: "HTTP", Endpoint: "http://a.example/msh"}},
		Reliability: cpa.Reliability{
			Retries: 4, RetryInterval: time.Second, DuplicateElimination: true,
		},
	}
	profileB := &cpa.CPP{
		PartyID: "urn:duns:200000002", PartyName: "Company B",
		Roles:      []cpa.Role{{ProcessName: "PurchaseOrder", Name: "Seller"}},
		Transports: []cpa.Transport{{Protocol: "HTTP", Endpoint: "http://b.example/msh"}},
		Reliability: cpa.Reliability{
			Retries: 6, RetryInterval: 2 * time.Second, DuplicateElimination: true,
		},
	}
	fmt.Println("step 2: both companies drafted CPPs (Buyer and Seller for PurchaseOrder)")

	// Step 3: Company A submits its profile.
	docA, _ := profileA.MarshalXMLDoc()
	eoA := rim.NewExtrinsicObject("cpp-CompanyA", "text/xml")
	if err := reg.SubmitRepositoryItem(ctx, eoA, docA); err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 3: Company A's profile published to the registry as", eoA.ID)

	// Step 4: Company B discovers it.
	hits := reg.QM.FindObjects(rim.TypeExtrinsicObject, "cpp-Company%")
	if len(hits) != 1 {
		log.Fatalf("discovery found %d profiles", len(hits))
	}
	_, discovered, err := reg.GetRepositoryItem(hits[0].Base().ID)
	if err != nil {
		log.Fatal(err)
	}
	parsedA, err := cpa.ParseCPP(discovered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 4: Company B discovered %s's profile through the registry\n", parsedA.PartyName)

	// Step 5: compose the agreement.
	agreement, err := cpa.Compose(parsedA, profileB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 5: CPA %s agreed — %s as %s, %s as %s, retries=%d interval=%s\n",
		agreement.ID[:17]+"...", agreement.PartyA, agreement.RoleA,
		agreement.PartyB, agreement.RoleB,
		agreement.Reliability.Retries, agreement.Reliability.RetryInterval)

	// Step 6: business messages flow over ebMS across a lossy network.
	received := 0
	seller := ebms.NewReceiver(func(m *ebms.Message) error {
		received++
		fmt.Printf("        seller processed %s (%s)\n", m.Action, m.Payload)
		return nil
	}, simclock.Real{})
	srv := httptest.NewServer(seller.HTTPHandler())
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	lossy := &lossyTransport{inner: ebms.HTTPTransport{Client: srv.Client()}, dropRate: 0.5, rng: rng}
	buyer := ebms.NewReliableSender(lossy, simclock.Real{})
	buyer.Retries = agreement.Reliability.Retries
	buyer.RetryInterval = time.Millisecond // wall-clock demo: fast retries

	for i := 1; i <= 3; i++ {
		m := ebms.NewMessage(agreement.PartyA, agreement.PartyB,
			"urn:services:"+agreement.ProcessName, "NewOrder",
			fmt.Sprintf("PO-%04d", i), simclock.Real{}.Now())
		m.CPAID = agreement.ID
		if _, err := buyer.Send(srv.URL, m); err != nil {
			log.Fatal(err)
		}
	}
	processed, duplicates := seller.Stats()
	fmt.Printf("step 6: 3 orders sent over a 50%%-loss network — %d attempts, "+
		"%d processed once each, %d duplicates eliminated\n",
		buyer.Attempts(), processed, duplicates)
	if received != 3 {
		log.Fatalf("seller processed %d orders, want 3", received)
	}

	// Bonus (ebBPSS): the business service interface can enforce the
	// agreed process shape on the conversation.
	conv, err := bpss.NewConversation(bpss.PurchaseOrder())
	if err != nil {
		log.Fatal(err)
	}
	must(conv.Observe(bpss.Step{FromRole: "Buyer", Action: "NewOrder"}))
	must(conv.Observe(bpss.Step{FromRole: "Seller", Action: "NewOrder.Response"}))
	if err := conv.Observe(bpss.Step{FromRole: "Buyer", Action: "ShipNotice"}); err != nil {
		fmt.Println("ebBPSS monitor rejected an out-of-role step:", err)
	}
	must(conv.Observe(bpss.Step{FromRole: "Seller", Action: "ShipNotice"}))
	fmt.Println("ebBPSS: PurchaseOrder collaboration completed conformantly:", conv.Done())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// lossyTransport randomly drops sends to exercise retransmission.
type lossyTransport struct {
	inner    ebms.Transport
	dropRate float64
	rng      *rand.Rand
}

// Send implements ebms.Transport with random loss. Losses can strike
// after the receiver processed the message (a lost acknowledgment), which
// is exactly what duplicate elimination exists for.
func (l *lossyTransport) Send(endpoint string, m *ebms.Message) (*ebms.Acknowledgment, error) {
	ack, err := l.inner.Send(endpoint, m)
	if err != nil {
		return nil, err
	}
	if l.rng.Float64() < l.dropRate {
		return nil, fmt.Errorf("network ate the acknowledgment")
	}
	return ack, nil
}
