// MTC workload example: the motivating scenario of thesis §3.1 — a
// Many-Task Computing application dispatching hundreds of short tasks to a
// Web Service deployed on several hosts, discovered through the registry
// on every invocation.
//
// It runs the same workload twice: once against a stock registry (the
// client always lands on the first returned URI, overloading one host) and
// once against the load-balanced registry (least-loaded ordering with
// fallback), then prints the per-host task distribution and the imbalance
// metrics side by side.
//
// Run with: go run ./examples/mtcworkload
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/lbexp"
	"repro/internal/metrics"
	"repro/internal/mtc"
)

func main() {
	workload := mtc.Workload{
		Tasks:            200,
		MeanInterarrival: 2 * time.Second,
		TaskCPU:          10,
		TaskMemB:         64 << 20,
		Seed:             7,
	}
	base := lbexp.Config{Hosts: 4, Heterogeneous: true, Workload: workload}

	combos := []lbexp.Combo{
		{Name: "stock freebXML (first URI)", Registry: core.PolicyStock, Client: mtc.ClientFirst},
		{Name: "thesis scheme (least-loaded+fallback)", Registry: core.PolicyLeastLoaded, Client: mtc.ClientFirst, Fallback: true},
	}
	tbl, reports, err := lbexp.ComparePolicies(base, combos)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)

	hosts := lbexp.HostNames[:4]
	dist := metrics.NewTable(append([]string{"registry"}, hosts...)...)
	for i, c := range combos {
		cells := []interface{}{c.Name}
		for _, v := range reports[i].TaskShare(hosts) {
			cells = append(cells, v)
		}
		dist.AddRow(cells...)
	}
	fmt.Println("tasks executed per host:")
	fmt.Println(dist)

	stock, lb := reports[0], reports[1]
	fmt.Printf("load fairness: stock %.3f -> balanced %.3f (1.0 = perfectly uniform)\n",
		stock.MeanFairness(), lb.MeanFairness())
	fmt.Printf("mean task latency: stock %.1fs -> balanced %.1fs\n",
		stock.LatencySummary().Mean, lb.LatencySummary().Mean)
}
