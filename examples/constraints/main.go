// Constraint-language tour: every clause of the thesis's §3.2 grammar —
// cpuLoad / memory / swapmemory with the gt(gr)/geq/ls(lt)/leq/eq symbols
// of Table 3.5, KB/MB/GB units, military-time service windows (including
// windows that wrap midnight), and the §5.2 netdelay extension.
//
// Run with: go run ./examples/constraints
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/constraint"
)

func main() {
	// The exact block from thesis §3.2.
	block := `<constraint>
	  <cpuLoad>load ls 1.0 </cpuLoad>
	  <memory>memory gr 3GB</memory>
	  <swapmemory>swapmemory gr 5MB </swapmemory>
	  <starttime>1000</starttime>
	  <endtime>1200</endtime>
	</constraint>`

	c, rest, err := constraint.FromDescription("Adder web service. " + block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed: %s\n", c.XML())
	fmt.Printf("remaining description: %q\n\n", rest)

	samples := []struct {
		name string
		s    constraint.Sample
	}{
		{"idle, plenty of memory", constraint.Sample{Load: 0.2, MemoryB: 8 << 30, SwapB: 1 << 30}},
		{"busy (load 2.5)", constraint.Sample{Load: 2.5, MemoryB: 8 << 30, SwapB: 1 << 30}},
		{"memory-starved (2GB)", constraint.Sample{Load: 0.2, MemoryB: 2 << 30, SwapB: 1 << 30}},
		{"swap-starved (1MB)", constraint.Sample{Load: 0.2, MemoryB: 8 << 30, SwapB: 1 << 20}},
	}
	fmt.Println("resource clauses against host samples:")
	for _, x := range samples {
		fmt.Printf("  %-25s -> satisfied=%v\n", x.name, c.SatisfiedBy(x.s))
	}

	fmt.Println("\nservice window 1000-1200 against request times:")
	for _, hm := range [][2]int{{9, 59}, {10, 0}, {11, 30}, {12, 0}, {12, 1}} {
		at := time.Date(2011, 4, 22, hm[0], hm[1], 0, 0, time.UTC)
		fmt.Printf("  %02d:%02d -> open=%v\n", hm[0], hm[1], c.TimeSatisfied(at))
	}

	// A night window wrapping midnight.
	night, err := constraint.ParseXML(`<constraint><starttime>2200</starttime><endtime>0600</endtime></constraint>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnight window 2200-0600:")
	for _, h := range []int{21, 23, 3, 6, 7} {
		at := time.Date(2011, 4, 22, h, 0, 0, 0, time.UTC)
		fmt.Printf("  %02d:00 -> open=%v\n", h, night.TimeSatisfied(at))
	}

	// The §5.2 future-work extension: network delay as a constraint.
	nd, err := constraint.ParseXML(`<constraint><netdelay>netdelay ls 25</netdelay></constraint>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnetdelay ls 25 (ms):")
	for _, ms := range []float64{5, 24, 25, 80} {
		fmt.Printf("  host at %3.0fms -> eligible=%v\n", ms, nd.SatisfiedBy(constraint.Sample{NetDelayMs: ms}))
	}

	// Malformed blocks are rejected, and the registry then behaves as if
	// the service had no constraints (thesis ServiceConstraint).
	if _, _, err := constraint.FromDescription(`<constraint><cpuLoad>frobnicate</cpuLoad></constraint>`); err != nil {
		fmt.Printf("\nmalformed constraint rejected as expected: %v\n", err)
	}
}
