// Federation example: two registries — a campus registry reached in
// process and a partner registry reached over real HTTP — joined into one
// federation (thesis Table 1.1 "Federation Support", the ebXML counterpart
// of UDDI's registry affiliation in Fig. 1.12).
//
// The example publishes services into each registry, runs a federated
// find and a federated SQL query across both, then selectively replicates
// the campus registry's public services to the partner — with origin
// (Home) stamping and idempotency on re-run.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/jaxr"
	"repro/internal/registry"
	"repro/internal/rim"
)

func main() {
	// Campus registry, localCall mode.
	campusReg, err := registry.New(registry.Config{Policy: core.PolicyFilter})
	if err != nil {
		log.Fatal(err)
	}
	campus := login(jaxr.ConnectLocal(campusReg), "campus-admin")

	// Partner registry, SOAP over a loopback socket.
	partnerReg, err := registry.New(registry.Config{Policy: core.PolicyFilter})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, partnerReg.Handler())
	partner := login(jaxr.Connect("http://"+ln.Addr().String(), nil), "partner-admin")
	fmt.Println("partner registry at http://" + ln.Addr().String())

	// Publish distinct content into each member.
	publish(campus, "PublicAdder", "http://thermo.sdsu.edu:8080/Adder/addService")
	publish(campus, "PublicMatrixSolve", "http://exergy.sdsu.edu:8080/Matrix/solve")
	publish(campus, "InternalPayroll", "http://hr.sdsu.edu:8080/Payroll/run")
	publish(partner, "PartnerRenderer", "http://render.partner.example:8080/Render/frame")

	fed, err := federation.New(
		federation.Member{Name: "campus", Conn: campus},
		federation.Member{Name: "partner", Conn: partner},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Federated find across both members.
	results, err := fed.Find("Service", "%")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfederated find (all services):")
	for _, r := range results {
		fmt.Printf("  %-20s @ %s\n", r.Object.Base().Name.String(), r.Member)
	}

	// Federated SQL query.
	cols, rows, err := fed.Query("SELECT s.name FROM Service s WHERE s.name LIKE 'P%' ORDER BY s.name", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfederated query (%v):\n", cols)
	for _, r := range rows {
		fmt.Printf("  %-20s @ %s\n", r.Cells[0], r.Member)
	}

	// Selective replication: only the Public% services cross the boundary.
	report, err := fed.Replicate("campus", "partner", "Service", "Public%")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplicated %d services to partner (skipped %d)\n", len(report.Copied), len(report.Skipped))
	for _, o := range partnerReg.QM.FindObjects(rim.TypeService, "Public%") {
		fmt.Printf("  partner now holds %s (home=%s)\n", o.Base().Name.String(), o.Base().Home)
	}
	// Idempotency: a second run copies nothing.
	report, _ = fed.Replicate("campus", "partner", "Service", "Public%")
	fmt.Printf("second replication: copied %d, skipped %d\n", len(report.Copied), len(report.Skipped))
	if len(partnerReg.QM.FindObjects(rim.TypeService, "InternalPayroll")) > 0 {
		log.Fatal("internal service leaked!")
	}
	fmt.Println("InternalPayroll stayed private, as intended")
}

func login(c *jaxr.Connection, alias string) *jaxr.Connection {
	creds, _, err := c.Register(alias, "pw", rim.PersonName{})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Login(creds); err != nil {
		log.Fatal(err)
	}
	return c
}

func publish(c *jaxr.Connection, name, uri string) {
	svc := rim.NewService(name, "")
	svc.AddBinding(uri)
	if _, err := c.Submit(svc); err != nil {
		log.Fatal(err)
	}
}
