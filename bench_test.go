// Benchmarks regenerating the measurable side of every experiment in
// EXPERIMENTS.md. Each benchmark corresponds to one experiment id from
// DESIGN.md's index:
//
//	E4.1  BenchmarkPublishOrganization        publish org + service + assoc
//	E4.2  BenchmarkAddService                  add a service to an org
//	E4.3  BenchmarkEditServiceDescription      update with constraint text
//	E4.4  BenchmarkDeleteService               remove with cascade
//	E4.6  BenchmarkDiscovery/*                 constrained discovery per policy
//	F3.2  BenchmarkCollectorSweep/*            NodeStatus sweep vs fleet size
//	H1    BenchmarkMTCWorkload/*               full MTC run per policy
//	H2    BenchmarkCollectorPeriodSweep/*      imbalance vs collection period
//	T3.9  BenchmarkAccessRegistryExecute       the XML API round trip
//	—     BenchmarkConstraintParse, BenchmarkSQLQuery, BenchmarkFilterQuery,
//	      BenchmarkSOAPRoundTrip, BenchmarkEbMSRoundTrip,
//	      BenchmarkFederatedFind, BenchmarkCPACompose   substrate costs
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/accessregistry"
	"repro/internal/admit"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/cpa"
	"repro/internal/ebms"
	"repro/internal/federation"
	"repro/internal/flight"
	"repro/internal/hostsim"
	"repro/internal/jaxr"
	"repro/internal/lbexp"
	"repro/internal/lcm"
	"repro/internal/metrics"
	"repro/internal/mtc"
	"repro/internal/nodestate"
	"repro/internal/nodestatus"
	"repro/internal/obs"
	"repro/internal/qm"
	"repro/internal/registry"
	"repro/internal/rim"
	"repro/internal/simclock"
	"repro/internal/soap"
	"repro/internal/store"
	"repro/internal/wal"
)

var benchEpoch = time.Date(2011, 4, 22, 11, 0, 0, 0, time.UTC)

func benchRegistry(b *testing.B, policy core.Policy) (*registry.Registry, lcm.Context) {
	b.Helper()
	reg, err := registry.New(registry.Config{
		Clock:     simclock.NewManual(benchEpoch),
		Policy:    policy,
		Admission: &admit.Config{}, // production defaults; never sheds at bench load
	})
	if err != nil {
		b.Fatal(err)
	}
	return reg, reg.AdminContext()
}

// BenchmarkPublishOrganization measures experiment E4.1's operation: one
// organization + service (2 bindings) + OffersService association.
func BenchmarkPublishOrganization(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyFilter)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		org := rim.NewOrganization(fmt.Sprintf("Org-%d", i))
		svc := rim.NewService(fmt.Sprintf("Svc-%d", i), "Service to monitor node status")
		svc.AddBinding(fmt.Sprintf("http://h%d.sdsu.edu:8080/svc", i))
		svc.AddBinding(fmt.Sprintf("http://h%db.sdsu.edu:8080/svc", i))
		assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
		if err := reg.LCM.SubmitObjects(ctx, org, svc, assoc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddService measures E4.2: adding one service to an existing
// organization.
func BenchmarkAddService(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyFilter)
	org := rim.NewOrganization("SDSU")
	if err := reg.LCM.SubmitObjects(ctx, org); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := rim.NewService(fmt.Sprintf("Adder-%d", i), "")
		svc.AddBinding(fmt.Sprintf("http://h%d.sdsu.edu/x", i))
		assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
		if err := reg.LCM.SubmitObjects(ctx, svc, assoc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEditServiceDescription measures E4.3: updating a service's
// description to a constraint block.
func BenchmarkEditServiceDescription(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyFilter)
	svc := rim.NewService("Adder", "plain")
	svc.AddBinding("http://thermo.sdsu.edu/x")
	if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		up := svc.Clone()
		up.Description = rim.NewIString(fmt.Sprintf("<constraint><cpuLoad>load ls %d.0</cpuLoad></constraint>", i%9+1))
		if err := reg.LCM.UpdateObjects(ctx, up); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeleteService measures E4.4/E4.5: removing a service with its
// association cascade.
func BenchmarkDeleteService(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyFilter)
	org := rim.NewOrganization("SDSU")
	if err := reg.LCM.SubmitObjects(ctx, org); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		svc := rim.NewService(fmt.Sprintf("Del-%d", i), "")
		svc.AddBinding(fmt.Sprintf("http://h%d.sdsu.edu/x", i))
		assoc := rim.NewAssociation(rim.AssocOffersService, org.ID, svc.ID)
		if err := reg.LCM.SubmitObjects(ctx, svc, assoc); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := reg.LCM.RemoveObjects(ctx, svc.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscovery measures E4.6: resolving a service to its arranged
// access URIs under each policy and several deployment sizes. This is the
// per-lookup cost the load-balancing scheme adds to the registry's hot
// path. The admission controller's TryAdmit/Release bracket every lookup
// — the same bracket the HTTP middleware applies — so the allocs/op gate
// covers the serving edge, not just the balancer. An uncontended
// admission is ticketless (nil) and must cost zero allocations.
func BenchmarkDiscovery(b *testing.B) {
	for _, policy := range []core.Policy{core.PolicyStock, core.PolicyFilter, core.PolicyRankFirst, core.PolicyLeastLoaded} {
		for _, hosts := range []int{2, 8, 32} {
			b.Run(fmt.Sprintf("%s/hosts=%d", policy, hosts), func(b *testing.B) {
				reg, ctx := benchRegistry(b, policy)
				svc := rim.NewService("Adder", `<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
				for i := 0; i < hosts; i++ {
					host := fmt.Sprintf("h%02d.sdsu.edu", i)
					svc.AddBinding("http://" + host + ":8080/x")
					reg.Store.NodeState().Upsert(store.NodeState{
						Host: host, Load: float64(i%4) * 0.7, MemoryB: 4 << 30, SwapB: 1 << 30,
						Updated: benchEpoch,
					})
				}
				if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
					b.Fatal(err)
				}
				now := benchEpoch
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if out, _ := reg.Admission.TryAdmit(admit.ClassDiscovery, now); out != admit.Admitted {
						b.Fatal(out)
					}
					uris, _, err := reg.QM.GetServiceBindings(svc.ID)
					if err != nil {
						b.Fatal(err)
					}
					_ = uris
					reg.Admission.Release(admit.ClassDiscovery, now, now)
				}
			})
		}
	}
}

// BenchmarkDiscoveryFastPath isolates the lock-free discovery fast path:
// cold (constraint cache invalidated every lookup), warm (cache and RCU
// snapshot both hot — the steady state the optimisation targets), and
// warm lookups under 1–64 concurrent readers while a live collector
// rewrites the NodeState table. The warm/collector variants run with a
// positive SnapshotMaxAge so readers stay on the published snapshot.
// Collector variants are recorded in BENCH_discovery.json but not gated:
// the background sweep's allocations land in the reader's allocs/op
// nondeterministically.
func BenchmarkDiscoveryFastPath(b *testing.B) {
	const hosts = 8
	setup := func(b *testing.B) (*registry.Registry, *rim.Service, *hostsim.Cluster) {
		b.Helper()
		clk := simclock.NewManual(benchEpoch)
		cluster := hostsim.NewCluster()
		ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
		svc := rim.NewService("Adder", `<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
		var names []string
		for i := 0; i < hosts; i++ {
			name := fmt.Sprintf("h%02d.sdsu.edu", i)
			names = append(names, name)
			cluster.Add(hostsim.NewHost(hostsim.Config{Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30}, benchEpoch))
			ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
			svc.AddBinding("http://" + name + ":8080/Adder/addService")
		}
		reg, err := registry.New(registry.Config{
			Clock:          clk,
			Policy:         core.PolicyFilter,
			SnapshotMaxAge: 25 * time.Second,
			Invoker:        nodestatus.LocalInvoker{Cluster: cluster, Clock: clk},
			Admission:      &admit.Config{},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.LCM.SubmitObjects(reg.AdminContext(), ns, svc); err != nil {
			b.Fatal(err)
		}
		for i, name := range names {
			reg.Store.NodeState().Upsert(store.NodeState{
				Host: name, Load: float64(i%4) * 0.7, MemoryB: 4 << 30, SwapB: 1 << 30,
				Updated: benchEpoch,
			})
		}
		return reg, svc, cluster
	}
	// lookup brackets the query with the admission edge, exactly as the
	// HTTP middleware does: uncontended TryAdmit is ticketless, so the
	// warm path must stay allocation-free with admission in the loop.
	lookup := func(b *testing.B, reg *registry.Registry, id string) {
		b.Helper()
		if out, _ := reg.Admission.TryAdmit(admit.ClassDiscovery, benchEpoch); out != admit.Admitted {
			b.Fatal(out)
		}
		uris, _, err := reg.QM.GetServiceBindings(id)
		reg.Admission.Release(admit.ClassDiscovery, benchEpoch, benchEpoch)
		if err != nil {
			b.Fatal(err)
		}
		if len(uris) == 0 {
			b.Fatal("no uris")
		}
	}

	b.Run("cold", func(b *testing.B) {
		reg, svc, _ := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.ConstraintCache.Invalidate(svc.ID)
			lookup(b, reg, svc.ID)
		}
	})
	b.Run("warm", func(b *testing.B) {
		reg, svc, _ := setup(b)
		lookup(b, reg, svc.ID) // populate cache + snapshot
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lookup(b, reg, svc.ID)
		}
	})
	for _, readers := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("collector/readers=%d", readers), func(b *testing.B) {
			reg, svc, _ := setup(b)
			reg.Collector.CollectOnce() // seed rows + snapshot
			lookup(b, reg, svc.ID)
			done := make(chan struct{})
			sweeping := make(chan struct{})
			go func() {
				defer close(sweeping)
				for {
					select {
					case <-done:
						return
					default:
						reg.Collector.CollectOnce()
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/readers + 1
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						uris, _, err := reg.QM.GetServiceBindings(svc.ID)
						if err != nil || len(uris) == 0 {
							b.Errorf("lookup: %v uris=%v", err, uris)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(done)
			<-sweeping
		})
	}
}

// BenchmarkCollectorSweep measures F3.2: one NodeStatus collection sweep
// against fleets of different sizes (local invoker, the localCall path).
func BenchmarkCollectorSweep(b *testing.B) {
	for _, hosts := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			clk := simclock.NewManual(benchEpoch)
			cluster := hostsim.NewCluster()
			var uris []string
			for i := 0; i < hosts; i++ {
				name := fmt.Sprintf("h%03d.sdsu.edu", i)
				cluster.Add(hostsim.NewHost(hostsim.Config{Name: name, Cores: 2, TotalMemB: 4 << 30}, benchEpoch))
				uris = append(uris, "http://"+name+":8080/NodeStatus/NodeStatusService")
			}
			table := store.NewNodeStateTable()
			col := nodestate.New(table, nodestatus.LocalInvoker{Cluster: cluster, Clock: clk}, clk,
				func() []string { return uris })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col.CollectOnce()
			}
		})
	}
}

// BenchmarkCollectorSweepHTTP measures the same sweep over real sockets.
func BenchmarkCollectorSweepHTTP(b *testing.B) {
	clk := simclock.NewManual(benchEpoch)
	host := hostsim.NewHost(hostsim.Config{Name: "h.sdsu.edu", Cores: 2, TotalMemB: 4 << 30}, benchEpoch)
	srv := httptest.NewServer(nodestatus.NewHandler(host, clk))
	defer srv.Close()
	table := store.NewNodeStateTable()
	col := nodestate.New(table, nodestatus.HTTPInvoker{Client: srv.Client()}, clk,
		func() []string { return []string{srv.URL} })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.CollectOnce()
	}
}

// BenchmarkMTCWorkload regenerates H1 at benchmark scale: one full MTC
// workload per iteration under each policy pairing. Throughput shape, not
// absolute numbers, is the result: the balanced variants finish the same
// task count with lower simulated latency.
func BenchmarkMTCWorkload(b *testing.B) {
	combos := []lbexp.Combo{
		{Name: "stock-first", Registry: core.PolicyStock, Client: mtc.ClientFirst},
		{Name: "stock-roundrobin", Registry: core.PolicyStock, Client: mtc.ClientRoundRobin},
		{Name: "lb-leastloaded-fb", Registry: core.PolicyLeastLoaded, Client: mtc.ClientFirst, Fallback: true},
	}
	for _, combo := range combos {
		b.Run(combo.Name, func(b *testing.B) {
			b.ReportAllocs()
			var lastFairness float64
			for i := 0; i < b.N; i++ {
				cfg := lbexp.Config{
					Hosts: 4, Heterogeneous: true,
					RegistryPolicy: combo.Registry, ClientPolicy: combo.Client,
					FallbackAll: combo.Fallback,
					Workload: mtc.Workload{
						Tasks: 100, MeanInterarrival: 2 * time.Second,
						TaskCPU: 10, TaskMemB: 32 << 20, Seed: int64(i + 1),
					},
				}
				rep, err := lbexp.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastFairness = rep.MeanFairness()
			}
			b.ReportMetric(lastFairness, "fairness")
		})
	}
}

// BenchmarkCollectorPeriodSweep regenerates H2's shape: imbalance under
// different collection periods, reported as a custom metric.
func BenchmarkCollectorPeriodSweep(b *testing.B) {
	for _, period := range []time.Duration{5 * time.Second, 25 * time.Second, 2 * time.Minute} {
		b.Run(period.String(), func(b *testing.B) {
			b.ReportAllocs()
			var fairness float64
			for i := 0; i < b.N; i++ {
				cfg := lbexp.Config{
					Hosts: 4, Heterogeneous: true,
					RegistryPolicy:   core.PolicyLeastLoaded,
					FallbackAll:      true,
					CollectionPeriod: period,
					Workload: mtc.Workload{
						Tasks: 100, MeanInterarrival: 2 * time.Second,
						TaskCPU: 10, TaskMemB: 32 << 20, Seed: int64(i + 1),
					},
				}
				rep, err := lbexp.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				fairness = rep.MeanFairness()
			}
			b.ReportMetric(fairness, "fairness")
		})
	}
}

// BenchmarkAccessRegistryExecute measures the Table 3.9 API round trip:
// parse action XML, publish, delete.
func BenchmarkAccessRegistryExecute(b *testing.B) {
	reg, err := registry.New(registry.Config{Clock: simclock.NewManual(benchEpoch), Policy: core.PolicyFilter})
	if err != nil {
		b.Fatal(err)
	}
	conn := jaxr.ConnectLocal(reg)
	creds, _, err := conn.Register("bench", "pw", rim.PersonName{})
	if err != nil {
		b.Fatal(err)
	}
	if err := conn.Login(creds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xmlDoc := fmt.Sprintf(`<root>
		  <action type="publish"><organization><name>BenchOrg-%d</name>
		    <service><name>BenchSvc-%d</name>
		      <accessuri>http://thermo.sdsu.edu:8080/x</accessuri></service>
		  </organization></action>
		  <action type="modify"><organization type="delete"><name>BenchOrg-%d</name></organization></action>
		</root>`, i, i, i)
		ar, err := accessregistry.NewFromReaders(nil, strings.NewReader(xmlDoc),
			accessregistry.WithConnection(conn))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ar.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstraintParse measures the §3.2 parser on the thesis's block.
func BenchmarkConstraintParse(b *testing.B) {
	desc := `Adder <constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 3GB</memory>` +
		`<swapmemory>swapmemory gr 5MB</swapmemory><starttime>1000</starttime><endtime>1200</endtime></constraint>`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := constraint.FromDescription(desc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLQuery measures the AdhocQuery SQL path over a populated
// registry.
func BenchmarkSQLQuery(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyStock)
	for i := 0; i < 500; i++ {
		svc := rim.NewService(fmt.Sprintf("Svc-%03d", i), "d")
		svc.AddBinding(fmt.Sprintf("http://h%03d.sdsu.edu/x", i))
		if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := reg.QM.SubmitAdhocQuery(qm.AdhocQueryRequest{
			Query: "SELECT s.id, s.name FROM Service s WHERE s.name LIKE 'Svc-1%' ORDER BY s.name LIMIT 20",
		})
		if err != nil {
			b.Fatal(err)
		}
		if resp.TotalResultsCount == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkFilterQuery measures the XML FilterQuery path on the same data.
func BenchmarkFilterQuery(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyStock)
	for i := 0; i < 500; i++ {
		if err := reg.LCM.SubmitObjects(ctx, rim.NewOrganization(fmt.Sprintf("Org-%03d", i))); err != nil {
			b.Fatal(err)
		}
	}
	query := `<FilterQuery target="Organization"><Clause leftArgument="name" comparator="LIKE" rightArgument="Org-1%"/></FilterQuery>`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := reg.QM.SubmitAdhocQuery(qm.AdhocQueryRequest{Syntax: qm.SyntaxFilter, Query: query})
		if err != nil {
			b.Fatal(err)
		}
		if resp.TotalResultsCount == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkSOAPRoundTrip measures one full SOAP request/response over HTTP
// (the messaging layer of Fig. 1.1).
func BenchmarkSOAPRoundTrip(b *testing.B) {
	reg, ctx := benchRegistry(b, core.PolicyStock)
	svc := rim.NewService("Ping", "")
	svc.AddBinding("http://thermo.sdsu.edu/x")
	if err := reg.LCM.SubmitObjects(ctx, svc); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()

	type regReq struct {
		XMLName struct{}                   `xml:"RegistryRequest"`
		Get     *registry.GetObjectRequest `xml:"GetObjectRequest"`
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp registry.GetObjectResponse
		if err := soap.Post(client, srv.URL+"/soap/registry", &regReq{Get: &registry.GetObjectRequest{ID: svc.ID}}, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEbMSRoundTrip measures one reliable message exchange over HTTP
// (send + receive + duplicate bookkeeping + acknowledgment).
func BenchmarkEbMSRoundTrip(b *testing.B) {
	r := ebms.NewReceiver(nil, simclock.Real{})
	srv := httptest.NewServer(r.HTTPHandler())
	defer srv.Close()
	s := ebms.NewReliableSender(ebms.HTTPTransport{Client: srv.Client()}, simclock.Real{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ebms.NewMessage("urn:a", "urn:b", "urn:svc", "Ping", "x", benchEpoch)
		if _, err := s.Send(srv.URL, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedFind measures a two-member federated search (one
// local member, one remote over HTTP).
func BenchmarkFederatedFind(b *testing.B) {
	regA, ctxA := benchRegistry(b, core.PolicyStock)
	regB, ctxB := benchRegistry(b, core.PolicyStock)
	for i := 0; i < 100; i++ {
		if err := regA.LCM.SubmitObjects(ctxA, rim.NewOrganization(fmt.Sprintf("FedOrg-A-%02d", i))); err != nil {
			b.Fatal(err)
		}
		if err := regB.LCM.SubmitObjects(ctxB, rim.NewOrganization(fmt.Sprintf("FedOrg-B-%02d", i))); err != nil {
			b.Fatal(err)
		}
	}
	srv := httptest.NewServer(regB.Handler())
	defer srv.Close()
	fed, err := federation.New(
		federation.Member{Name: "a", Conn: jaxr.ConnectLocal(regA)},
		federation.Member{Name: "b", Conn: jaxr.Connect(srv.URL, srv.Client())},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := fed.Find("Organization", "FedOrg-%")
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 200 {
			b.Fatalf("results = %d", len(results))
		}
	}
}

// BenchmarkCPACompose measures agreement formation from two profiles.
func BenchmarkCPACompose(b *testing.B) {
	a := &cpa.CPP{
		PartyID: "urn:duns:1", PartyName: "A",
		Roles:       []cpa.Role{{ProcessName: "PurchaseOrder", Name: "Buyer"}},
		Transports:  []cpa.Transport{{Protocol: "HTTPS", Endpoint: "https://a/msh"}},
		Reliability: cpa.Reliability{Retries: 3, RetryInterval: time.Second, DuplicateElimination: true},
	}
	c := &cpa.CPP{
		PartyID: "urn:duns:2", PartyName: "B",
		Roles:       []cpa.Role{{ProcessName: "PurchaseOrder", Name: "Seller"}},
		Transports:  []cpa.Transport{{Protocol: "HTTPS", Endpoint: "https://b/msh"}},
		Reliability: cpa.Reliability{Retries: 5, RetryInterval: 2 * time.Second, DuplicateElimination: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cpa.Compose(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- metrics primitives: atomic vs mutex baselines -----------------------
//
// internal/metrics.Counter and GaugeSet sit on the discovery fast path
// (constraint-cache hit counters, breaker-state reads), so they were
// converted from sync.Mutex to sync/atomic. The *Mutex variants below
// reimplement the old guarded versions inline as the "before" baseline;
// the *Atomic variants exercise the shipped types. Names deliberately do
// not match the BenchmarkDiscovery prefix, so the allocs/op CI gate
// (BENCH_PATTERN=BenchmarkDiscovery) ignores them.

type mutexCounter struct {
	mu sync.Mutex
	n  int64 // guarded by mu
}

func (c *mutexCounter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *mutexCounter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

type mutexGaugeSet struct {
	mu   sync.Mutex
	vals map[string]float64 // guarded by mu
}

func (g *mutexGaugeSet) Set(label string, v float64) {
	g.mu.Lock()
	if g.vals == nil {
		g.vals = make(map[string]float64)
	}
	g.vals[label] = v
	g.mu.Unlock()
}

func (g *mutexGaugeSet) Value(label string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vals[label]
}

func BenchmarkMetricsCounterMutex(b *testing.B) {
	var c mutexCounter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter did not move")
	}
}

func BenchmarkMetricsCounterAtomic(b *testing.B) {
	var c metrics.Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter did not move")
	}
}

func BenchmarkMetricsGaugeSetMutex(b *testing.B) {
	var g mutexGaugeSet
	for i := 0; i < 8; i++ {
		g.Set(fmt.Sprintf("host-%d:8080", i), float64(i))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 0 {
				g.Set("host-3:8080", float64(i))
			} else {
				_ = g.Value("host-3:8080")
			}
			i++
		}
	})
}

func BenchmarkMetricsGaugeSetAtomic(b *testing.B) {
	var g metrics.GaugeSet
	for i := 0; i < 8; i++ {
		g.Set(fmt.Sprintf("host-%d:8080", i), float64(i))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 0 {
				g.Set("host-3:8080", float64(i))
			} else {
				_ = g.Value("host-3:8080")
			}
			i++
		}
	})
}

// --- tracing overhead on the discovery warm path --------------------------
//
// BenchmarkTracingOverhead quantifies what PR 4's observability costs the
// PR 3 fast path. "disabled" is the production default — tracing compiled
// in, sampling off — and must match BenchmarkDiscoveryFastPath/warm
// (zero extra allocations: obs.TraceFrom returns nil and every span
// method no-ops on the nil receiver). "sampled" traces every request, the
// worst case; its cost is the one-time Trace allocation plus span
// bookkeeping, and is deliberately NOT part of the allocs/op CI gate
// (the name avoids the BenchmarkDiscovery prefix).
func BenchmarkTracingOverhead(b *testing.B) {
	const hosts = 8
	setup := func(b *testing.B, sample int) (*registry.Registry, *rim.Service) {
		b.Helper()
		clk := simclock.NewManual(benchEpoch)
		cluster := hostsim.NewCluster()
		ns := rim.NewService(nodestatus.ServiceName, "Service to monitor node status")
		svc := rim.NewService("Adder", `<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
		for i := 0; i < hosts; i++ {
			name := fmt.Sprintf("h%02d.sdsu.edu", i)
			cluster.Add(hostsim.NewHost(hostsim.Config{Name: name, Cores: 2, TotalMemB: 4 << 30, TotalSwapB: 2 << 30}, benchEpoch))
			ns.AddBinding("http://" + name + ":8080/NodeStatus/NodeStatusService")
			svc.AddBinding("http://" + name + ":8080/Adder/addService")
		}
		reg, err := registry.New(registry.Config{
			Clock:          clk,
			Policy:         core.PolicyFilter,
			SnapshotMaxAge: 25 * time.Second,
			Invoker:        nodestatus.LocalInvoker{Cluster: cluster, Clock: clk},
			TraceSample:    sample,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.LCM.SubmitObjects(reg.AdminContext(), ns, svc); err != nil {
			b.Fatal(err)
		}
		reg.Collector.CollectOnce()
		if _, _, err := reg.QM.GetServiceBindings(svc.ID); err != nil {
			b.Fatal(err) // warm the constraint cache + snapshot
		}
		return reg, svc
	}

	b.Run("disabled", func(b *testing.B) {
		reg, svc := setup(b, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := reg.Tracer.Start() // always nil at sample 0
			uris, _, err := reg.QM.GetServiceBindingsCtx(obs.WithTrace(context.Background(), tr), svc.ID)
			reg.Tracer.Finish(tr)
			if err != nil || len(uris) == 0 {
				b.Fatal(uris, err)
			}
		}
	})
	b.Run("sampled", func(b *testing.B) {
		reg, svc := setup(b, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := reg.Tracer.Start()
			uris, _, err := reg.QM.GetServiceBindingsCtx(obs.WithTrace(context.Background(), tr), svc.ID)
			reg.Tracer.Finish(tr)
			if err != nil || len(uris) == 0 {
				b.Fatal(uris, err)
			}
		}
	})
}

// --- end-to-end HTTP discovery: the zero-allocation serving edge ---------

// benchHTTPWriter is a reusable ResponseWriter: the header map is
// allocated once and the body is discarded, so the measured loop sees
// only the serving edge's own allocations — exactly what a real server
// amortizes across a keep-alive connection.
type benchHTTPWriter struct {
	header http.Header
	status int
	n      int
}

func (w *benchHTTPWriter) Header() http.Header         { return w.header }
func (w *benchHTTPWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *benchHTTPWriter) WriteHeader(s int)           { w.status = s }

// BenchmarkHTTPDiscovery measures the full HTTP discovery round trip —
// frozen-router dispatch, admission bracket, response-cache consult,
// response bytes — with tracing compiled in but unsampled (the
// production default). The warm variant serves the preserialized entry
// through admit's FastServe hook and must report 0 allocs/op; its
// BENCH_discovery.json entry carries a tightened 5% growth bound (which
// at a zero baseline admits no regression at all). miss re-renders every
// iteration by bumping the write epoch; nocache disables the subsystem
// and shows what every request cost before this PR.
func BenchmarkHTTPDiscovery(b *testing.B) {
	const hosts = 8
	setup := func(b *testing.B, cacheSize int) (http.Handler, *registry.Registry) {
		b.Helper()
		reg, err := registry.New(registry.Config{
			Clock:          simclock.NewManual(benchEpoch),
			Policy:         core.PolicyFilter,
			SnapshotMaxAge: 25 * time.Second,
			Admission:      &admit.Config{}, // production defaults; never sheds at bench load
			RespCacheSize:  cacheSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		svc := rim.NewService("Adder", `<constraint><cpuLoad>load ls 1.0</cpuLoad><memory>memory gr 1GB</memory></constraint>`)
		for i := 0; i < hosts; i++ {
			host := fmt.Sprintf("h%02d.sdsu.edu", i)
			svc.AddBinding("http://" + host + ":8080/Adder/addService")
			reg.Store.NodeState().Upsert(store.NodeState{
				Host: host, Load: float64(i%4) * 0.7, MemoryB: 4 << 30, SwapB: 1 << 30,
				Updated: benchEpoch,
			})
		}
		if err := reg.LCM.SubmitObjects(reg.AdminContext(), svc); err != nil {
			b.Fatal(err)
		}
		return reg.Handler(), reg
	}
	serve := func(b *testing.B, h http.Handler, w *benchHTTPWriter, req *http.Request) {
		b.Helper()
		w.n, w.status = 0, 0
		h.ServeHTTP(w, req)
		if w.status != 0 && w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
		if w.n == 0 {
			b.Fatal("empty response")
		}
	}

	b.Run("filter/hosts=8/warm", func(b *testing.B) {
		h, reg := setup(b, 0)
		req := httptest.NewRequest(http.MethodGet, "/registry/bindings?service=Adder", nil)
		w := &benchHTTPWriter{header: make(http.Header, 4)}
		serve(b, h, w, req) // render + store
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(b, h, w, req)
		}
		b.StopTimer()
		if hits := reg.RespCache.Hits.Value(); hits < int64(b.N) {
			b.Fatalf("hits = %d over %d warm requests", hits, b.N)
		}
	})
	b.Run("filter/hosts=8/miss", func(b *testing.B) {
		h, reg := setup(b, 0)
		req := httptest.NewRequest(http.MethodGet, "/registry/bindings?service=Adder", nil)
		w := &benchHTTPWriter{header: make(http.Header, 4)}
		serve(b, h, w, req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.RespCache.BumpEpoch() // every request re-renders and re-stores
			serve(b, h, w, req)
		}
	})
	b.Run("filter/hosts=8/nocache", func(b *testing.B) {
		h, reg := setup(b, -1)
		if reg.RespCache != nil {
			b.Fatal("cache built despite negative size")
		}
		req := httptest.NewRequest(http.MethodGet, "/registry/bindings?service=Adder", nil)
		w := &benchHTTPWriter{header: make(http.Header, 4)}
		serve(b, h, w, req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(b, h, w, req)
		}
	})
}

// --- flight recorder cost -------------------------------------------------
//
// BenchmarkFlightRecord isolates the wide-event recorder's per-request
// cost: one seqlock Append into the ring, with the host already interned
// (the steady state — interning is a one-time slow path per host) and,
// in the traced variant, a trace id to box. Deliberately NOT under the
// BenchmarkDiscovery prefix: the recorder's end-to-end cost is already
// inside the gated BenchmarkHTTPDiscovery warm path (which must stay at
// 0 allocs/op with the recorder always on); this entry just prices the
// Append itself.
func BenchmarkFlightRecord(b *testing.B) {
	rec := flight.Record{
		Route:       flight.RouteBindings,
		Outcome:     flight.OutcomeAdmitted,
		Verdict:     flight.VerdictFiltered,
		Status:      200,
		CacheHit:    true,
		Tier:        0,
		SnapshotGen: 7,
		SnapshotAge: 3 * time.Second,
		Eligible:    4,
		Latency:     400 * time.Microsecond,
		Host:        "h00.sdsu.edu",
		Unix:        benchEpoch.UnixNano(),
	}
	b.Run("append", func(b *testing.B) {
		ring := flight.NewRing(4096)
		ring.Append(&rec) // interns the host before measurement
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ring.Append(&rec)
		}
	})
	b.Run("append-traced", func(b *testing.B) {
		ring := flight.NewRing(4096)
		traced := rec
		traced.Trace = "0123456789abcdef"
		ring.Append(&traced)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ring.Append(&traced)
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		ring := flight.NewRing(4096)
		for i := 0; i < 4096; i++ {
			ring.Append(&rec)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := ring.Snapshot(flight.Filter{Limit: 100}); len(got) != 100 {
				b.Fatalf("snapshot returned %d records", len(got))
			}
		}
	})
}

// --- WAL append cost ------------------------------------------------------
//
// BenchmarkWALAppend measures the durability tax per acknowledged write:
// one length+CRC32C-framed record appended to the active segment, under
// the two interesting flush policies. "never" isolates the framing and
// buffer cost; "always" adds the fsync every acknowledged registry write
// pays at the default -fsync setting. Deliberately NOT under the
// BenchmarkDiscovery prefix — fsync latency is hardware-dependent and
// must not feed the allocs/op CI gate.
func BenchmarkWALAppend(b *testing.B) {
	payload := []byte(strings.Repeat("x", 512))
	for _, pol := range []wal.FsyncPolicy{wal.FsyncNever, wal.FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), wal.Options{Fsync: pol, Clock: simclock.NewManual(benchEpoch)})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
